// Quickstart: build an engine over random points, run one area query with
// both methods, and print what each did.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// 100k points uniform in the unit square — the paper's smallest
	// dataset.
	rng := rand.New(rand.NewSource(1))
	points := vaq.UniformPoints(rng, 100_000, vaq.UnitSquare())

	// The engine builds the Voronoi topology (via Delaunay triangulation)
	// and an STR-packed R-tree; both query methods share them.
	eng, err := vaq.NewEngine(points, vaq.UnitSquare())
	if err != nil {
		log.Fatal(err)
	}

	// A concave pentagon as the query area.
	area := vaq.MustPolygon([]vaq.Point{
		vaq.Pt(0.20, 0.20),
		vaq.Pt(0.60, 0.25),
		vaq.Pt(0.55, 0.60),
		vaq.Pt(0.40, 0.35), // reflex vertex: the polygon is concave
		vaq.Pt(0.25, 0.55),
	})
	fmt.Printf("query area: %.4f of the universe (MBR %.4f — the gap is the paper's point)\n",
		area.Area(), area.Bounds().Area())

	// One Querier surface for everything: per-query options select the
	// method, WithStatsInto exposes the work performed.
	ctx := context.Background()
	region := vaq.PolygonRegion(area)
	for _, m := range []vaq.Method{vaq.Traditional, vaq.VoronoiBFS} {
		var st vaq.Stats
		ids, err := eng.Query(ctx, region, vaq.UsingMethod(m), vaq.WithStatsInto(&st))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s found %5d points | candidates validated: %5d | wasted validations: %4d | %v\n",
			m, len(ids), st.Candidates, st.RedundantValidations, st.Duration)
	}

	// The default Query uses the paper's Voronoi method.
	ids, err := eng.Query(ctx, region)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first matches: %v ...\n", ids[:min(5, len(ids))])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
