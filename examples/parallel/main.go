// Parallel demonstrates concurrent area queries. An Engine is immutable
// after construction — index, Voronoi topology and point data are only
// read by queries, and per-query scratch state lives in an internal pool —
// so goroutines share one Engine directly, and QueryAll spreads a batch
// over a worker pool sized by WithParallelism.
//
// The demo runs the same batch sequentially and in parallel, verifies the
// results match, and prints the throughput of each.
//
//	go run ./examples/parallel
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	points := vaq.UniformPoints(rng, 200_000, vaq.UnitSquare())
	vaq.HilbertSort(points, vaq.UnitSquare())

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // demonstrate the pool even on one CPU
	}
	// One engine serves both runs: single queries always execute on the
	// calling goroutine (the sequential baseline), while QueryAll
	// spreads the batch over the worker pool.
	eng, err := vaq.NewEngine(points, vaq.UnitSquare(), vaq.WithParallelism(workers))
	if err != nil {
		log.Fatal(err)
	}

	// One batch mixing polygon and circle regions, shared by both runs.
	regions := make([]vaq.Region, 2048)
	for i := range regions {
		if i%4 == 3 {
			c := vaq.NewCircle(vaq.Pt(0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64()), 0.05)
			regions[i] = vaq.CircleRegion(c)
		} else {
			pg := vaq.RandomQueryPolygon(rng, 10, 0.01, vaq.UnitSquare())
			regions[i] = vaq.PolygonRegion(pg)
		}
	}

	// Sequential baseline: one query at a time on this goroutine (a batch
	// of one never engages the pool).
	ctx := context.Background()
	start := time.Now()
	seqOut := make([][]int64, len(regions))
	var seqStats vaq.Stats
	for i := range regions {
		var st vaq.Stats
		ids, err := eng.Query(ctx, regions[i], vaq.WithStatsInto(&st))
		if err != nil {
			log.Fatal(err)
		}
		seqOut[i] = ids
		seqStats.Add(st)
	}
	seqWall := time.Since(start)

	start = time.Now()
	var parStats vaq.Stats
	parOut, err := eng.QueryAll(ctx, regions, vaq.WithStatsInto(&parStats))
	if err != nil {
		log.Fatal(err)
	}
	parWall := time.Since(start)

	for i := range regions {
		if len(seqOut[i]) != len(parOut[i]) {
			log.Fatalf("query %d: sequential %d ids, parallel %d ids",
				i, len(seqOut[i]), len(parOut[i]))
		}
	}
	if seqStats.Candidates != parStats.Candidates {
		log.Fatalf("stats diverged: sequential %d candidates, parallel %d",
			seqStats.Candidates, parStats.Candidates)
	}

	n := len(regions)
	fmt.Printf("%d area queries over %d points (%d results)\n",
		n, eng.Len(), parStats.ResultSize)
	fmt.Printf("sequential:          %8v  (%7.0f queries/s)\n",
		seqWall.Round(time.Millisecond), float64(n)/seqWall.Seconds())
	fmt.Printf("parallel (%d workers): %8v  (%7.0f queries/s, %.2fx)\n",
		workers, parWall.Round(time.Millisecond), float64(n)/parWall.Seconds(),
		seqWall.Seconds()/parWall.Seconds())
}
