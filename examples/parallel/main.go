// Parallel demonstrates concurrent area queries: the engine's index,
// points and Voronoi topology are immutable after construction, so clones
// (one per goroutine) can serve queries in parallel.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	points := vaq.UniformPoints(rng, 200_000, vaq.UnitSquare())
	vaq.HilbertSort(points, vaq.UnitSquare())

	eng, err := vaq.NewEngine(points, vaq.UnitSquare())
	if err != nil {
		log.Fatal(err)
	}

	// A fixed query mix, shared by all workers.
	queries := make([]vaq.Polygon, 256)
	for i := range queries {
		queries[i] = vaq.RandomQueryPolygon(rng, 10, 0.01, vaq.UnitSquare())
	}

	const queriesPerWorker = 500
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // demonstrate the pattern even on one CPU
	}

	var wg sync.WaitGroup
	var totalResults atomic.Int64
	start := time.Now()
	for w := 0; w < workers; w++ {
		clone, err := eng.Clone()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(worker int, local *vaq.Engine) {
			defer wg.Done()
			for i := 0; i < queriesPerWorker; i++ {
				ids, _, err := local.Query(queries[(worker*queriesPerWorker+i)%len(queries)])
				if err != nil {
					log.Fatal(err)
				}
				totalResults.Add(int64(len(ids)))
			}
		}(w, clone)
	}
	wg.Wait()
	elapsed := time.Since(start)

	n := workers * queriesPerWorker
	fmt.Printf("%d workers × %d queries = %d area queries in %v (%.0f queries/s, %d points returned)\n",
		workers, queriesPerWorker, n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds(), totalResults.Load())
}
