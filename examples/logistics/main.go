// Logistics models an IO-bound deployment, the regime the paper targets:
// delivery stops stored in a paged object store behind a small buffer
// pool, queried zone by zone. The example runs every zone with both
// methods and reports the page IO each one cost.
//
//	go run ./examples/logistics
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 200k delivery stops; records carry a 256-byte attribute payload
	// (address, time window, ...) and live in 4 KiB pages behind a buffer
	// pool holding ~2% of the file.
	stops := vaq.UniformPoints(rng, 200_000, vaq.UnitSquare())
	eng, err := vaq.NewEngine(stops, vaq.UnitSquare(), vaq.WithStore(vaq.StoreConfig{
		PageSize:     4096,
		PoolPages:    512,
		PayloadBytes: 256,
	}))
	if err != nil {
		log.Fatal(err)
	}

	// Eight random concave delivery zones, each ~2% of the service area.
	zones := make([]vaq.Region, 8)
	for i := range zones {
		zones[i] = vaq.PolygonRegion(vaq.RandomQueryPolygon(rng, 10, 0.02, vaq.UnitSquare()))
	}
	ctx := context.Background()

	fmt.Println("zone | method      | stops | candidates | page reads | time")
	fmt.Println("-----+-------------+-------+------------+------------+----------")
	var totalTrad, totalVor int
	for zi, zone := range zones {
		for _, m := range []vaq.Method{vaq.Traditional, vaq.VoronoiBFS} {
			eng.ResetIOStats()
			var st vaq.Stats
			ids, err := eng.Query(ctx, zone, vaq.UsingMethod(m), vaq.WithStatsInto(&st))
			if err != nil {
				log.Fatal(err)
			}
			reads, _, _ := eng.IOStats()
			fmt.Printf("%4d | %-11s | %5d | %10d | %10d | %v\n",
				zi, m, len(ids), st.Candidates, reads, st.Duration)
			if m == vaq.Traditional {
				totalTrad += reads
			} else {
				totalVor += reads
			}
		}
	}
	fmt.Printf("\ntotal page reads: traditional=%d voronoi=%d (%.1f%% saved)\n",
		totalTrad, totalVor, 100*(1-float64(totalVor)/float64(totalTrad)))
}
