// Served demonstrates the network serving layer: the dataset is split
// into contiguous chunks, each chunk served by its own in-process HTTP
// server (the same handler the areaserve binary mounts), and a
// RemoteEngine dialed over the group answers queries byte-identically to
// a local engine over the whole dataset — unary queries, NDJSON streams
// and k-nearest-neighbor fan-outs alike.
//
// It then kills one backend to show the two partial-failure policies:
// fail-fast (the default) surfaces the backend error, degraded
// (WithDegradedFanOut) answers from the survivors.
//
//	go run ./examples/served
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"slices"

	"repro"
	"repro/internal/serve"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	points := vaq.UniformPoints(rng, 60_000, vaq.UnitSquare())

	// One local engine over everything — the oracle.
	local, err := vaq.NewEngine(points, vaq.UnitSquare())
	if err != nil {
		log.Fatal(err)
	}

	// Three chunk servers, exactly what `areaserve -shard i/3` runs.
	cuts := []int{0, 20_000, 45_000, len(points)}
	var urls []string
	var servers []*http.Server
	for i := 0; i+1 < len(cuts); i++ {
		chunk := points[cuts[i]:cuts[i+1]]
		eng, err := vaq.NewEngine(chunk, vaq.UnitSquare())
		if err != nil {
			log.Fatal(err)
		}
		h := serve.NewHandler(eng, serve.Config{IDOffset: int64(cuts[i]), Flavor: "static"})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		servers = append(servers, srv)
		urls = append(urls, "http://"+ln.Addr().String())
		fmt.Printf("chunk %d: %5d points (ids %d..%d) on %s\n",
			i, len(chunk), cuts[i], cuts[i+1]-1, ln.Addr())
	}

	// Dial the group: /v1/info tells the client each backend's id offset
	// and bounds, so addresses are all it needs.
	ctx := context.Background()
	remote, err := vaq.DialRemote(ctx, urls)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote engine: %d backends, %d points\n\n", remote.NumBackends(), remote.Len())

	region := vaq.PolygonRegion(vaq.RandomQueryPolygon(rng, 12, 0.015, vaq.UnitSquare()))

	// Unary query: scattered to the backends whose bounds intersect the
	// region, merged back into ascending global id order.
	want, _ := local.Query(ctx, region)
	got, err := remote.Query(ctx, region)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %d matches, identical to local: %v\n", len(got), slices.Equal(got, want))

	// Streaming: frames arrive as NDJSON, positions bit-exact.
	streamed := 0
	err = remote.Each(ctx, region, func(id int64, p vaq.Point) bool {
		streamed++
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("each:  %d frames streamed\n", streamed)

	// KNN: backends are visited in MINDIST order; ones provably unable to
	// improve the k-th distance are never contacted.
	q := vaq.Pt(0.42, 0.58)
	wantKNN, _, _ := local.KNearest(ctx, q, 16)
	gotKNN, _, err := remote.KNearest(ctx, q, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knn:   16 nearest identical to local: %v\n\n", slices.Equal(gotKNN, wantKNN))

	// Partial failure: shut one backend down hard and query again.
	servers[1].Close()
	if _, err := remote.Query(ctx, region); err != nil {
		fmt.Printf("fail-fast after losing a backend: %v\n", err)
	}
	degraded, err := vaq.NewRemoteEngine([]vaq.RemoteBackend{
		{URL: urls[0], IDOffset: 0, Len: cuts[1]},
		{URL: urls[1], IDOffset: int64(cuts[1]), Len: cuts[2] - cuts[1]},
		{URL: urls[2], IDOffset: int64(cuts[2]), Len: len(points) - cuts[2]},
	}, vaq.WithDegradedFanOut())
	if err != nil {
		log.Fatal(err)
	}
	partial, err := degraded.Query(ctx, region)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded answers from survivors: %d of %d matches (%d backend queries dropped)\n",
		len(partial), len(want), degraded.Dropped())

	for _, srv := range servers {
		srv.Close()
	}
}
