// Sharded demonstrates the Hilbert-partitioned sharded engine. The
// dataset is split into spatially coherent shards, each an independent
// engine with its own index, Voronoi topology and — store-backed, as
// here — its own record store and buffer pool. Queries run scatter-gather:
// shards whose bounds miss the query are pruned, the rest fan out onto
// the worker pool, and the per-shard results merge into one globally
// stable id set, identical to an unsharded engine's.
//
// The demo builds a single engine and an 8-shard engine over the same
// store-backed dataset, runs the same batch through both, verifies the
// results match, and prints per-engine throughput and IO counters.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	points := vaq.UniformPoints(rng, 200_000, vaq.UnitSquare())
	store := vaq.StoreConfig{PageSize: 4096, PoolPages: 64, PayloadBytes: 256}

	single, err := vaq.NewEngine(points, vaq.UnitSquare(), vaq.WithStore(store))
	if err != nil {
		log.Fatal(err)
	}
	const shards = 8
	sharded, err := vaq.NewShardedEngine(points, vaq.UnitSquare(),
		vaq.WithShards(shards), vaq.WithStore(store))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d points in %d shards, sizes %v\n",
		sharded.Len(), sharded.NumShards(), sharded.ShardSizes())

	regions := make([]vaq.Region, 512)
	for i := range regions {
		regions[i] = vaq.PolygonRegion(vaq.RandomQueryPolygon(rng, 10, 0.01, vaq.UnitSquare()))
	}

	// One Querier call shape on both engines; results come back in
	// ascending id order on every backend, so they compare element-wise.
	ctx := context.Background()
	start := time.Now()
	singleOut, err := single.QueryAll(ctx, regions)
	singleWall := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	singleReads, singleHits, _ := single.IOStats()

	start = time.Now()
	var stats vaq.Stats
	shardedOut, err := sharded.QueryAll(ctx, regions, vaq.WithStatsInto(&stats))
	shardedWall := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	shardedReads, shardedHits, _ := sharded.IOStats()

	for i := range regions {
		if len(singleOut[i]) != len(shardedOut[i]) {
			log.Fatalf("query %d: single %d ids, sharded %d",
				i, len(singleOut[i]), len(shardedOut[i]))
		}
		for j := range singleOut[i] {
			if singleOut[i][j] != shardedOut[i][j] {
				log.Fatalf("query %d: id %d differs (single %d, sharded %d)",
					i, j, singleOut[i][j], shardedOut[i][j])
			}
		}
	}

	n := len(regions)
	fmt.Printf("%d queries, %d result ids, identical result sets\n", n, stats.ResultSize)
	fmt.Printf("single engine:    %8v  (%6.0f queries/s)  %d page reads, %d cache hits\n",
		singleWall.Round(time.Millisecond), float64(n)/singleWall.Seconds(),
		singleReads, singleHits)
	fmt.Printf("%d-shard engine:   %8v  (%6.0f queries/s)  %d page reads, %d cache hits\n",
		shards, shardedWall.Round(time.Millisecond), float64(n)/shardedWall.Seconds(),
		shardedReads, shardedHits)
	fmt.Printf("wall ratio %.2fx on GOMAXPROCS=%d; aggregate cache %d vs %d pages\n",
		singleWall.Seconds()/shardedWall.Seconds(), runtime.GOMAXPROCS(0),
		shards*store.PoolPages, store.PoolPages)
	fmt.Println("(shards scatter in parallel across cores; per-shard queries use the")
	fmt.Println(" density-robust strict expansion, so single-core wall time trades a")
	fmt.Println(" constant factor for exactness on sub-sampled shard diagrams)")
}
