// Streaming demonstrates the dynamic engine's epoch-snapshot concurrency:
// sensor readings are ingested continuously by a writer goroutine while a
// concurrent monitor queries a concave watch region — no index or Voronoi
// rebuild ever happens (each point is inserted incrementally), and the
// monitor never blocks ingestion. Every monitor pass pins one epoch with
// Snapshot(), so its result count, Count() and k-nearest readout are
// mutually consistent even though thousands of inserts land mid-pass.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	eng := vaq.NewDynamicEngine(vaq.UnitSquare())

	// A fixed concave watch region (~5% of the universe by MBR).
	watch := vaq.PolygonRegion(vaq.MustPolygon([]vaq.Point{
		vaq.Pt(0.40, 0.40), vaq.Pt(0.58, 0.44), vaq.Pt(0.62, 0.60),
		vaq.Pt(0.52, 0.52), vaq.Pt(0.46, 0.62), vaq.Pt(0.38, 0.56),
	}))
	center := vaq.Pt(0.5, 0.5)
	ctx := context.Background()

	// Writer: 10 batches of 5000 readings drifting across the map,
	// ingested with no coordination with the monitor below beyond the
	// engine itself.
	const batches, perBatch = 10, 5000
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for batch := 1; batch <= batches; batch++ {
			cx := 0.3 + 0.05*float64(batch)
			for i := 0; i < perBatch; i++ {
				p := vaq.Pt(
					clamp(cx+rng.NormFloat64()*0.25),
					clamp(0.5+rng.NormFloat64()*0.25),
				)
				if _, _, err := eng.Insert(p); err != nil {
					log.Fatal(err)
				}
			}
		}
	}()

	fmt.Println("epoch (points) | in watch region | candidates | nearest-to-center | query time")
	fmt.Println("---------------+-----------------+------------+-------------------+-----------")
	ingesting := true
	for ingesting {
		select {
		case <-done:
			ingesting = false // one final pass below on the completed stream
		case <-time.After(20 * time.Millisecond):
		}
		// Pin one epoch: the area query, its stats and the k-nearest
		// readout below all describe exactly this point set, while the
		// writer keeps inserting underneath.
		snap := eng.Snapshot()
		if snap.Len() == 0 {
			continue
		}
		var st vaq.Stats
		ids, err := snap.Query(ctx, watch, vaq.WithStatsInto(&st))
		if err != nil {
			log.Fatal(err)
		}
		nearest, _, err := snap.KNearest(ctx, center, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%14d | %15d | %10d | %17v | %v\n",
			snap.Epoch(), len(ids), st.Candidates, snap.Point(nearest[0]), st.Duration)
	}
	wg.Wait()

	// Final consistency readout on the completed stream.
	final := eng.Snapshot()
	n, err := vaq.Count(ctx, final, watch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %d points ingested, %d inside the watch region\n", final.Len(), n)
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
