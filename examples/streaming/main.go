// Streaming demonstrates the dynamic engine: sensor readings arrive over
// time and area queries (a concave watch region) run between batches —
// no index or Voronoi rebuild ever happens; each point is inserted
// incrementally.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	eng := vaq.NewDynamicEngine(vaq.UnitSquare())

	// A fixed concave watch region (~5% of the universe by MBR).
	watch := vaq.MustPolygon([]vaq.Point{
		vaq.Pt(0.40, 0.40), vaq.Pt(0.58, 0.44), vaq.Pt(0.62, 0.60),
		vaq.Pt(0.52, 0.52), vaq.Pt(0.46, 0.62), vaq.Pt(0.38, 0.56),
	})

	fmt.Println("batch | total points | in watch region | candidates | query time")
	fmt.Println("------+--------------+-----------------+------------+-----------")
	for batch := 1; batch <= 10; batch++ {
		// A batch of 5000 new readings drifts across the map.
		cx := 0.3 + 0.05*float64(batch)
		for i := 0; i < 5000; i++ {
			p := vaq.Pt(
				clamp(cx+rng.NormFloat64()*0.25),
				clamp(0.5+rng.NormFloat64()*0.25),
			)
			if _, _, err := eng.Insert(p); err != nil {
				log.Fatal(err)
			}
		}
		ids, st, err := eng.Query(watch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d | %12d | %15d | %10d | %v\n",
			batch, eng.Len(), len(ids), st.Candidates, st.Duration)
	}
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
