package vaq

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// metricName builds the labeled per-query metric name the registry uses.
func metricName(base, flavor string, m Method) string {
	return fmt.Sprintf("%s{flavor=%q,method=%q}", base, flavor, m.String())
}

// TestMetricsReconcileAcrossFlavors pins the tentpole invariant: for every
// flavor, the registry's counters equal the sums of the per-query Stats
// the same queries reported through WithStatsInto — the two observability
// surfaces never disagree.
func TestMetricsReconcileAcrossFlavors(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	pts := UniformPoints(rng, 3000, UnitSquare())
	store := StoreConfig{PageSize: 4096, PoolPages: 16}

	reg := NewMetricsRegistry()
	eng, err := NewEngine(pts, UnitSquare(), WithStore(store), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedEngine(pts, UnitSquare(), WithShards(5), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	dyn := NewDynamicEngine(UnitSquare(), WithMetrics(reg))
	for i, p := range pts[:1200] {
		if _, _, err := dyn.Insert(p); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	flavors := []struct {
		flavor string
		q      Querier
	}{
		{flavorStatic, eng},
		{flavorSharded, sharded},
		{flavorDynamic, dyn},
	}

	ctx := context.Background()
	regions := make([]Region, 6)
	for i := range regions {
		regions[i] = PolygonRegion(RandomQueryPolygon(rng, 10, 0.03, UnitSquare()))
	}

	type expect struct {
		queries, candidates, results, loaded uint64
		singles, batches                     uint64
	}
	want := map[string]map[Method]*expect{}
	for _, f := range flavors {
		want[f.flavor] = map[Method]*expect{}
		for _, m := range []Method{Traditional, VoronoiBFS} {
			e := &expect{}
			want[f.flavor][m] = e
			// Single queries and one streamed query.
			for _, region := range regions[:4] {
				var st Stats
				if _, err := f.q.Query(ctx, region, UsingMethod(m), WithStatsInto(&st)); err != nil {
					t.Fatalf("%s/%s query: %v", f.flavor, m, err)
				}
				e.queries++
				e.singles++
				e.candidates += uint64(st.Candidates)
				e.results += uint64(st.ResultSize)
				e.loaded += uint64(st.RecordsLoaded)
			}
			var st Stats
			err := f.q.Each(ctx, regions[4], func(int64, Point) bool { return true },
				UsingMethod(m), WithStatsInto(&st))
			if err != nil {
				t.Fatalf("%s/%s each: %v", f.flavor, m, err)
			}
			e.queries++
			e.singles++
			e.candidates += uint64(st.Candidates)
			e.results += uint64(st.ResultSize)
			e.loaded += uint64(st.RecordsLoaded)
			// One batch: its members count as queries, its aggregate stats as
			// work, but per-query latency is not observed for members.
			if _, err := f.q.QueryAll(ctx, regions, UsingMethod(m), WithStatsInto(&st)); err != nil {
				t.Fatalf("%s/%s queryall: %v", f.flavor, m, err)
			}
			e.queries += uint64(len(regions))
			e.batches++
			e.candidates += uint64(st.Candidates)
			e.results += uint64(st.ResultSize)
			e.loaded += uint64(st.RecordsLoaded)
		}
	}

	snap := reg.Snapshot()
	for _, f := range flavors {
		var batches uint64
		for m, e := range want[f.flavor] {
			check := func(base string, got, want uint64) {
				if got != want {
					t.Errorf("%s %s/%s: registry %d, per-query sum %d", base, f.flavor, m, got, want)
				}
			}
			check("queries", snap.Counters[metricName("vaq_queries_total", f.flavor, m)], e.queries)
			check("candidates", snap.Counters[metricName("vaq_query_candidates_total", f.flavor, m)], e.candidates)
			check("results", snap.Counters[metricName("vaq_query_results_total", f.flavor, m)], e.results)
			check("records_loaded", snap.Counters[metricName("vaq_query_records_loaded_total", f.flavor, m)], e.loaded)
			check("errors", snap.Counters[metricName("vaq_query_errors_total", f.flavor, m)], 0)
			check("cancellations", snap.Counters[metricName("vaq_query_cancellations_total", f.flavor, m)], 0)
			h, ok := snap.Histograms[metricName("vaq_query_latency_ns", f.flavor, m)]
			if !ok || h.Count != e.singles {
				t.Errorf("latency %s/%s: histogram count %d, want %d single queries", f.flavor, m, h.Count, e.singles)
			}
			if ok && e.singles > 0 && (h.P50 <= 0 || h.P99 < h.P50) {
				t.Errorf("latency %s/%s: implausible percentiles p50=%v p99=%v", f.flavor, m, h.P50, h.P99)
			}
			batches += e.batches
		}
		got := snap.Counters[fmt.Sprintf("vaq_batches_total{flavor=%q}", f.flavor)]
		if got != batches {
			t.Errorf("batches %s: registry %d, want %d", f.flavor, got, batches)
		}
	}

	// The store-backed static engine's pool collectors must agree with the
	// deprecated thin view.
	reads, hits, ok := eng.IOStats()
	if !ok {
		t.Fatal("static engine lost its store")
	}
	gr := snap.Gauges[fmt.Sprintf("vaq_bufpool_page_reads_total{flavor=%q}", flavorStatic)]
	gh := snap.Gauges[fmt.Sprintf("vaq_bufpool_cache_hits_total{flavor=%q}", flavorStatic)]
	if int(gr) != reads || int(gh) != hits {
		t.Errorf("pool collectors: gauges (%v, %v) disagree with IOStats (%d, %d)", gr, gh, reads, hits)
	}

	// Dynamic collectors: the epoch gauge equals accepted inserts, and the
	// queries above forced at least one snapshot publish.
	if got := snap.Gauges[fmt.Sprintf("vaq_dynamic_epoch{flavor=%q}", flavorDynamic)]; got != 1200 {
		t.Errorf("dynamic epoch gauge = %v, want 1200", got)
	}
	ph := snap.Histograms[fmt.Sprintf("vaq_dynamic_publish_latency_ns{flavor=%q}", flavorDynamic)]
	if ph.Count == 0 {
		t.Error("dynamic publish latency histogram never observed a rebuild")
	}
}

// TestMetricsParallelSoak hammers one shared registry from every flavor
// concurrently (run under -race) with snapshot readers interleaved, then
// reconciles the total query count exactly.
func TestMetricsParallelSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	pts := UniformPoints(rng, 1500, UnitSquare())

	reg := NewMetricsRegistry()
	eng, err := NewEngine(pts, UnitSquare(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedEngine(pts, UnitSquare(), WithShards(4), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	dyn := NewDynamicEngine(UnitSquare(), WithMetrics(reg))
	for _, p := range pts {
		if _, _, err := dyn.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	queriers := []Querier{eng, sharded, dyn, dyn.Snapshot()}
	perFlavor := map[string]uint64{} // dynamic and snapshot share a label

	const goroutines = 8
	const perG = 40
	regions := make([]Region, 8)
	for i := range regions {
		regions[i] = PolygonRegion(RandomQueryPolygon(rng, 8, 0.02, UnitSquare()))
	}
	// Deterministic assignment so expected counts are exact.
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			switch (g + i) % len(queriers) {
			case 0:
				perFlavor[flavorStatic]++
			case 1:
				perFlavor[flavorSharded]++
			default:
				perFlavor[flavorDynamic]++
			}
		}
	}

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent snapshot reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
			}
		}
	}()
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var tr QueryTrace
			for i := 0; i < perG; i++ {
				q := queriers[(g+i)%len(queriers)]
				opts := []QueryOpt{UsingMethod(VoronoiBFS)}
				if i%5 == 0 {
					// Traces are per-goroutine values; reused across queries.
					opts = append(opts, WithTraceInto(&tr))
				}
				if _, err := q.Query(ctx, regions[(g*perG+i)%len(regions)], opts...); err != nil {
					t.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	snap := reg.Snapshot()
	for flavor, wantN := range perFlavor {
		got := snap.Counters[metricName("vaq_queries_total", flavor, VoronoiBFS)]
		if got != wantN {
			t.Errorf("%s: vaq_queries_total = %d, want %d", flavor, got, wantN)
		}
	}
}

// TestMetricsCancellationClassified pins the error taxonomy: a cancelled
// query lands in the cancellations counter, not errors.
func TestMetricsCancellationClassified(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	pts := UniformPoints(rng, 800, UnitSquare())
	reg := NewMetricsRegistry()
	eng, err := NewEngine(pts, UnitSquare(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	region := PolygonRegion(RandomQueryPolygon(rng, 8, 0.05, UnitSquare()))
	if _, err := eng.Query(ctx, region); err == nil {
		t.Fatal("cancelled query succeeded")
	}
	snap := reg.Snapshot()
	if got := snap.Counters[metricName("vaq_query_cancellations_total", flavorStatic, VoronoiBFS)]; got != 1 {
		t.Errorf("cancellations = %d, want 1", got)
	}
	if got := snap.Counters[metricName("vaq_query_errors_total", flavorStatic, VoronoiBFS)]; got != 0 {
		t.Errorf("errors = %d, want 0", got)
	}
	// The attempt still counts as a query.
	if got := snap.Counters[metricName("vaq_queries_total", flavorStatic, VoronoiBFS)]; got != 1 {
		t.Errorf("queries = %d, want 1", got)
	}
}

// TestMetricsResultCacheCollectors pins the rcache lift: the registry's
// cache gauges mirror ResultCache.Stats exactly.
func TestMetricsResultCacheCollectors(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	pts := UniformPoints(rng, 1000, UnitSquare())
	reg := NewMetricsRegistry()
	rc := NewResultCache(64)
	eng, err := NewEngine(pts, UnitSquare(), WithResultCache(rc), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	region := PolygonRegion(RandomQueryPolygon(rng, 8, 0.04, UnitSquare()))
	for i := 0; i < 3; i++ { // one miss, two hits
		if _, err := eng.Query(ctx, region); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Query(ctx, region, Limit(5)); err != nil { // bypass
		t.Fatal(err)
	}
	cs := rc.Stats()
	if cs.Hits != 2 || cs.Misses != 1 || cs.Bypasses != 1 {
		t.Fatalf("unexpected cache stats: %+v", cs)
	}
	snap := reg.Snapshot()
	fl := fmt.Sprintf("{flavor=%q}", flavorStatic)
	checks := map[string]float64{
		"vaq_rcache_hits_total" + fl:     float64(cs.Hits),
		"vaq_rcache_misses_total" + fl:   float64(cs.Misses),
		"vaq_rcache_bypasses_total" + fl: float64(cs.Bypasses),
		"vaq_rcache_hit_rate" + fl:       cs.HitRate(),
		"vaq_rcache_entries" + fl:        float64(rc.Len()),
	}
	for name, want := range checks {
		if got := snap.Gauges[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestQueryTracePhases pins WithTraceInto: phase timings, the cache-hit
// marker, and the sharded fan-out/merge markers.
func TestQueryTracePhases(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	pts := UniformPoints(rng, 2000, UnitSquare())
	rc := NewResultCache(16)
	eng, err := NewEngine(pts, UnitSquare(),
		WithStore(StoreConfig{PageSize: 4096, PoolPages: 8}), WithResultCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	region := PolygonRegion(RandomQueryPolygon(rng, 10, 0.05, UnitSquare()))

	var tr QueryTrace
	if _, err := eng.Query(ctx, region, WithTraceInto(&tr)); err != nil {
		t.Fatal(err)
	}
	if tr.Total() <= 0 {
		t.Error("traced query reported no total time")
	}
	if tr.CacheHit() {
		t.Error("first query cannot be a cache hit")
	}
	if got := tr.String(); !strings.Contains(got, "method=voronoi") || !strings.Contains(got, "cache=miss") {
		t.Errorf("trace string missing expected fields: %q", got)
	}

	// Second run: served from the result cache; Begin must have reset the
	// previous query's state.
	if _, err := eng.Query(ctx, region, WithTraceInto(&tr)); err != nil {
		t.Fatal(err)
	}
	if !tr.CacheHit() {
		t.Error("second identical query missed the result cache")
	}

	// Sharded: fan-out recorded, and the gather merge phase exists.
	sharded, err := NewShardedEngine(pts, UnitSquare(), WithShards(6))
	if err != nil {
		t.Fatal(err)
	}
	var str QueryTrace
	if _, err := sharded.Query(ctx, region, WithTraceInto(&str)); err != nil {
		t.Fatal(err)
	}
	if str.FanOut() < 1 || str.FanOut() > 6 {
		t.Errorf("sharded fan-out = %d, want 1..6", str.FanOut())
	}
}

// TestMetricsHandlerServesEngineCounters drives the acceptance criterion's
// curl check in-process: after real queries, the handler serves non-zero
// query counters and latency percentiles in both formats.
func TestMetricsHandlerServesEngineCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	pts := UniformPoints(rng, 1000, UnitSquare())
	reg := NewMetricsRegistry()
	rc := NewResultCache(32)
	eng, err := NewEngine(pts, UnitSquare(),
		WithStore(StoreConfig{PageSize: 4096, PoolPages: 8}),
		WithResultCache(rc), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	region := PolygonRegion(RandomQueryPolygon(rng, 8, 0.04, UnitSquare()))
	for i := 0; i < 4; i++ {
		if _, err := eng.Query(ctx, region); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(MetricsHandler(reg))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var flat map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatalf("JSON snapshot: %v", err)
	}
	qname := metricName("vaq_queries_total", flavorStatic, VoronoiBFS)
	var queries uint64
	if err := json.Unmarshal(flat[qname], &queries); err != nil || queries != 4 {
		t.Errorf("handler %s = %s (err %v), want 4", qname, flat[qname], err)
	}
	var hist struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
	}
	lname := metricName("vaq_query_latency_ns", flavorStatic, VoronoiBFS)
	if err := json.Unmarshal(flat[lname], &hist); err != nil {
		t.Fatalf("latency histogram JSON: %v", err)
	}
	if hist.Count != 4 || hist.P50 <= 0 || hist.P99 < hist.P50 {
		t.Errorf("latency summary count=%d p50=%v p99=%v", hist.Count, hist.P50, hist.P99)
	}
	// Buffer-pool and cache collectors are live through the handler too.
	var reads float64
	json.Unmarshal(flat[fmt.Sprintf("vaq_bufpool_page_reads_total{flavor=%q}", flavorStatic)], &reads)
	if reads <= 0 {
		t.Error("handler reports zero buffer-pool page reads after store-backed queries")
	}
	var hits float64
	json.Unmarshal(flat[fmt.Sprintf("vaq_rcache_hits_total{flavor=%q}", flavorStatic)], &hits)
	if hits != 3 {
		t.Errorf("handler rcache hits = %v, want 3", hits)
	}

	resp2, err := srv.Client().Get(srv.URL + "?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE vaq_queries_total counter",
		`vaq_queries_total{flavor="static",method="voronoi"} 4`,
		`quantile="0.99"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q", want)
		}
	}
}
