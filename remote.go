package vaq

import (
	"context"
	"net/http"
	"time"

	"repro/internal/remote"
)

// RemoteEngine answers area queries by fanning out to remote areaserve
// backends over HTTP — the serving-layer Querier flavor. Each backend
// holds a contiguous chunk of the dataset (its /v1/info advertises the
// chunk's global id offset and bounds); queries scatter to the backends
// whose bounds intersect the region's MBR, per-backend results remap into
// global id space and merge into ascending order, and statistics
// aggregate across the fan-out — so a RemoteEngine returns byte-identical
// results to a local engine over the union of its backends' points.
//
// Failure handling: unary queries (Query, QueryAll, Count, KNearest) are
// idempotent and retry transport-level failures per backend
// (WithRemoteRetries); Each streams never retry. WithDegradedFanOut
// selects the partial-failure policy — by default a backend failure (after
// retries) fails the query; degraded drops the failed backends and serves
// from the survivors, erroring only when every relevant backend fails.
//
// RemoteEngine implements Querier and is safe for concurrent use. It
// composes with WithResultCache and WithMetrics exactly like the local
// flavors (flavor label "remote").
type RemoteEngine struct {
	re        *remote.Engine
	rc        *ResultCache // nil without WithResultCache
	cacheSalt uint64
	qm        *queryMetrics // nil without WithMetrics
}

// WithRemoteTimeout bounds each unary request attempt a RemoteEngine
// makes; the remaining budget also rides the Vaq-Timeout-Ms header so the
// server abandons work the client stopped waiting for. 0 (the default)
// leaves attempts bounded only by the query's context.
func WithRemoteTimeout(d time.Duration) Option {
	return func(c *config) { c.remotePerTry = d }
}

// WithRemoteRetries retries failed unary backend requests up to n extra
// attempts with exponential backoff starting at backoff (<= 0 picks a
// 50ms default). Only transport-level failures and 5xx responses retry;
// semantic errors and caller cancellation never do. Streams (Each) never
// retry mid-flight.
func WithRemoteRetries(n int, backoff time.Duration) Option {
	return func(c *config) { c.remoteRetries, c.remoteBackoff = n, backoff }
}

// WithDegradedFanOut switches the RemoteEngine's partial-failure policy
// from fail-fast to degraded: backends that still fail after retries are
// dropped from the fan-out and the query is answered from the survivors
// (possibly missing their points), erroring only when every relevant
// backend fails. The drop count is visible via RemoteEngine.Dropped.
func WithDegradedFanOut() Option {
	return func(c *config) { c.remoteDegraded = true }
}

// WithRemoteClient sets the http.Client a RemoteEngine uses (connection
// pooling, TLS, proxies). The default is a dedicated plain client.
func WithRemoteClient(hc *http.Client) Option {
	return func(c *config) { c.remoteClient = hc }
}

// DialRemote discovers each URL's shape from its /v1/info and builds a
// RemoteEngine over the backends. Engine-construction options that only
// make sense locally (WithIndex, WithStore, ...) are ignored; the
// remote-specific options above plus WithResultCache and WithMetrics
// apply.
func DialRemote(ctx context.Context, urls []string, opts ...Option) (*RemoteEngine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	re, err := remote.Dial(ctx, urls, remoteConfig(cfg))
	if err != nil {
		return nil, err
	}
	return wrapRemote(re, cfg), nil
}

// NewRemoteEngine builds a RemoteEngine over explicitly configured
// backends, for callers that already know every backend's id offset and
// bounds (or want to skip the /v1/info round trips).
func NewRemoteEngine(backends []RemoteBackend, opts ...Option) (*RemoteEngine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	bs := make([]remote.Backend, len(backends))
	for i, b := range backends {
		bs[i] = remote.Backend{URL: b.URL, IDOffset: b.IDOffset, Bounds: b.Bounds, Len: b.Len}
	}
	re, err := remote.New(bs, remoteConfig(cfg))
	if err != nil {
		return nil, err
	}
	return wrapRemote(re, cfg), nil
}

// RemoteBackend configures one backend for NewRemoteEngine. A zero
// (empty) Bounds disables MBR pruning for the backend; a zero Len skips
// it during KNearest.
type RemoteBackend struct {
	URL      string
	IDOffset int64
	Bounds   Rect
	Len      int
}

func remoteConfig(cfg config) remote.Config {
	return remote.Config{
		Client:        cfg.remoteClient,
		PerTryTimeout: cfg.remotePerTry,
		Retries:       cfg.remoteRetries,
		RetryBackoff:  cfg.remoteBackoff,
		Degraded:      cfg.remoteDegraded,
	}
}

func wrapRemote(re *remote.Engine, cfg config) *RemoteEngine {
	e := &RemoteEngine{re: re, rc: cfg.rcache, cacheSalt: nextCacheSalt()}
	if cfg.metrics != nil {
		e.qm = newQueryMetrics(cfg.metrics, flavorRemote)
		if cfg.rcache != nil {
			registerCacheMetrics(cfg.metrics, flavorRemote, cfg.rcache)
		}
	}
	return e
}

// Query implements Querier, consulting the result cache when one was
// attached. Results are in ascending global id order from the fan-out
// merge.
func (e *RemoteEngine) Query(ctx context.Context, region Region, opts ...QueryOpt) ([]int64, error) {
	p := resolve(opts)
	return cachedQuery(flavorRemote, e.qm, e.rc, e.cacheSalt, 0, region, &p, func() ([]int64, Stats, error) {
		return e.re.QueryRegionSpec(ctx, region, p.spec())
	})
}

// QueryAll implements Querier: each backend answers the whole batch in
// one round trip, and per-region results merge across backends.
func (e *RemoteEngine) QueryAll(ctx context.Context, regions []Region, opts ...QueryOpt) ([][]int64, error) {
	p := resolve(opts)
	start := beginQuery(e.qm, &p, flavorRemote)
	out, st, err := e.re.QueryRegionsSpec(ctx, regions, p.spec())
	if p.stats != nil {
		*p.stats = st
	}
	endBatch(e.qm, &p, start, len(regions), &st, err)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Each implements Querier, streaming backends one after another, each in
// its server-side discovery order; global ids from different backends
// interleave, so no overall id ordering is implied. Streams always fail
// fast — a mid-stream backend failure surfaces immediately, even under
// the degraded policy.
func (e *RemoteEngine) Each(ctx context.Context, region Region, yield func(id int64, p Point) bool, opts ...QueryOpt) error {
	p := resolve(opts)
	start := beginQuery(e.qm, &p, flavorRemote)
	st, err := e.re.EachRegion(ctx, region, p.spec(), yield)
	if p.stats != nil {
		*p.stats = st
	}
	endQuery(e.qm, &p, start, &st, err)
	return err
}

// KNearest returns the k stored points nearest to q in increasing
// distance order (ties broken by ascending global id), merging per-backend
// answers with the same bounds-frontier walk the sharded engine uses —
// backends provably unable to improve the current k-th distance are never
// contacted.
func (e *RemoteEngine) KNearest(ctx context.Context, q Point, k int) ([]int64, Stats, error) {
	return e.re.KNearest(ctx, q, k)
}

// Len returns the total advertised point count across backends.
func (e *RemoteEngine) Len() int { return e.re.Len() }

// Bounds returns the union of the backends' advertised bounds.
func (e *RemoteEngine) Bounds() Rect { return e.re.Bounds() }

// NumBackends returns the backend count.
func (e *RemoteEngine) NumBackends() int { return e.re.NumBackends() }

// Dropped returns the cumulative number of backend queries dropped under
// the degraded partial-failure policy (always 0 without
// WithDegradedFanOut).
func (e *RemoteEngine) Dropped() uint64 { return e.re.Dropped() }
