package vaq

import (
	"context"
	"iter"
)

// Results adapts Each to Go's range-over-func iteration: it returns a
// sequence of (id, position) pairs streamed as the query discovers them,
// plus an error function to check once the loop ends. Breaking out of the
// loop stops the query cleanly, exactly like yield returning false.
//
//	seq, errf := vaq.Results(ctx, eng, area)
//	for id, p := range seq {
//		process(id, p)
//	}
//	if err := errf(); err != nil { ... }
//
// The sequence is single-use — range over it once, then call errf; a
// second range re-runs the query from scratch (options included), which is
// rarely what you want. All Each semantics carry over: results arrive in
// discovery order (not ascending), Limit bounds the number of pairs, and
// cancellation of ctx ends the sequence early with errf reporting
// ctx.Err().
func Results(ctx context.Context, q Querier, region Region, opts ...QueryOpt) (iter.Seq2[int64, Point], func() error) {
	var err error
	seq := func(yield func(int64, Point) bool) {
		err = q.Each(ctx, region, yield, opts...)
	}
	return seq, func() error { return err }
}
