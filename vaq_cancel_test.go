package vaq

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cancelFlavors builds the four backends over a shared dataset for the
// cancellation tests.
func cancelFlavors(t *testing.T, n int) []querierFlavor {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return buildFlavors(t, UniformPoints(rng, n, UnitSquare()))
}

// TestAlreadyCancelledContext pins that a cancelled context returns
// ctx.Err() promptly — before any query work — on every backend and entry
// point.
func TestAlreadyCancelledContext(t *testing.T) {
	flavors := cancelFlavors(t, 2000)
	rng := rand.New(rand.NewSource(8))
	region := PolygonRegion(RandomQueryPolygon(rng, 8, 0.05, UnitSquare()))
	regions := []Region{region, region, region}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, f := range flavors {
		if _, err := f.q.Query(ctx, region); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Query err = %v, want context.Canceled", f.name, err)
		}
		if _, err := f.q.QueryAll(ctx, regions); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: QueryAll err = %v, want context.Canceled", f.name, err)
		}
		yields := 0
		err := f.q.Each(ctx, region, func(int64, Point) bool { yields++; return true })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Each err = %v, want context.Canceled", f.name, err)
		}
		if yields != 0 {
			t.Errorf("%s: Each yielded %d results on a cancelled context", f.name, yields)
		}
	}
}

// blockingRegion wraps a Region so its first InteriorPoint call (the
// Voronoi seed lookup, the first thing a query does) signals entered and
// then blocks until unblock closes — a deterministic hook to cancel a
// batch while one of its queries is provably in flight.
type blockingRegion struct {
	Region
	entered chan struct{}
	unblock chan struct{}
	once    sync.Once
}

func (b *blockingRegion) InteriorPoint() Point {
	b.once.Do(func() { close(b.entered) })
	<-b.unblock
	return b.Region.InteriorPoint()
}

// TestCancelMidBatch cancels a QueryAll while one of its queries is
// in flight and pins, on every backend, that the batch aborts its
// un-started work, returns ctx.Err(), reports partial stats, and leaks no
// goroutines.
func TestCancelMidBatch(t *testing.T) {
	flavors := cancelFlavors(t, 2000)
	rng := rand.New(rand.NewSource(9))

	before := runtime.NumGoroutine()
	for _, f := range flavors {
		gate := &blockingRegion{
			Region:  PolygonRegion(RandomQueryPolygon(rng, 8, 0.03, UnitSquare())),
			entered: make(chan struct{}),
			unblock: make(chan struct{}),
		}
		regions := make([]Region, 256)
		for i := range regions {
			regions[i] = PolygonRegion(RandomQueryPolygon(rng, 8, 0.01, UnitSquare()))
		}
		regions[1] = gate // early slot: blocks one worker while the rest proceed

		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			<-gate.entered
			cancel() // the gate query is provably in flight
			close(gate.unblock)
		}()
		var st Stats
		_, err := f.q.QueryAll(ctx, regions, WithStatsInto(&st))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: mid-batch cancel err = %v, want context.Canceled", f.name, err)
		}
		// Partial stats: some queries may have completed before the cancel
		// landed, none after the full batch (the gate guarantees at least
		// one query never finished before cancellation).
		if st.ResultSize < 0 {
			t.Errorf("%s: negative partial ResultSize %d", f.name, st.ResultSize)
		}
		cancel()
	}

	// The pool drains before QueryAll returns; give the runtime a moment
	// and require the goroutine count to settle back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled batches: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidQuery cancels a single in-flight Query through the same
// gate and pins that every backend returns ctx.Err() from inside the
// algorithm's candidate loop.
func TestCancelMidQuery(t *testing.T) {
	flavors := cancelFlavors(t, 2000)
	rng := rand.New(rand.NewSource(10))
	for _, f := range flavors {
		gate := &blockingRegion{
			Region:  PolygonRegion(RandomQueryPolygon(rng, 8, 0.05, UnitSquare())),
			entered: make(chan struct{}),
			unblock: make(chan struct{}),
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			<-gate.entered
			cancel()
			close(gate.unblock)
		}()
		if _, err := f.q.Query(ctx, gate); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: mid-query cancel err = %v, want context.Canceled", f.name, err)
		}
		cancel()
	}
}

// TestEachStreamsBeforeCompletion verifies the streaming contract on a
// large region: a consumer that stops after the first yield observes it
// while the query has validated only a small prefix of the eventual
// result, proving Each yields during the BFS rather than after
// materializing the full set.
func TestEachStreamsBeforeCompletion(t *testing.T) {
	flavors := cancelFlavors(t, 20000)
	// A region covering most of the universe: thousands of results.
	region := PolygonRegion(MustPolygon([]Point{
		Pt(0.05, 0.05), Pt(0.95, 0.05), Pt(0.95, 0.95), Pt(0.05, 0.95),
	}))
	ctx := context.Background()

	for _, f := range flavors {
		total, err := Count(ctx, f.q, region)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if total < 1000 {
			t.Fatalf("%s: region too small for a streaming test (%d results)", f.name, total)
		}
		var st Stats
		yields := 0
		err = f.q.Each(ctx, region, func(int64, Point) bool {
			yields++
			return false // stop at the first streamed result
		}, WithStatsInto(&st))
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if yields != 1 {
			t.Fatalf("%s: %d yields after stopping at the first", f.name, yields)
		}
		// Streaming proof: stopping after one yield must have cost only a
		// prefix of the full query's validations.
		if st.Candidates >= total/2 {
			t.Errorf("%s: early-stopped Each validated %d candidates of %d results — not streaming",
				f.name, st.Candidates, total)
		}

		// Limit bounds yields the same way on every backend.
		count := 0
		if err := f.q.Each(ctx, region, func(int64, Point) bool { count++; return true }, Limit(25)); err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if count != 25 {
			t.Errorf("%s: Limit(25) yielded %d", f.name, count)
		}
	}
}

// knnFlavors adapts the four backends' KNearest methods to one shape for
// the cancellation tests (KNearest is per-flavor, not part of Querier).
func knnFlavors(t *testing.T, n int) []struct {
	name string
	knn  func(context.Context, Point, int) ([]int64, Stats, error)
} {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	flavors := buildFlavors(t, UniformPoints(rng, n, UnitSquare()))
	out := make([]struct {
		name string
		knn  func(context.Context, Point, int) ([]int64, Stats, error)
	}, len(flavors))
	for i, f := range flavors {
		out[i].name = f.name
		switch q := f.q.(type) {
		case *Engine:
			out[i].knn = q.KNearest
		case *ShardedEngine:
			out[i].knn = q.KNearest
		case *DynamicEngine:
			out[i].knn = q.KNearest
		case *Snapshot:
			out[i].knn = q.KNearest
		default:
			t.Fatalf("unknown flavor %s", f.name)
		}
	}
	return out
}

// countdownCtx is a context whose Err() starts failing with Canceled
// after a fixed number of calls — a deterministic way to cancel inside a
// KNearest expansion (whose checks are call-counted: once up front, then
// every cancelStride candidates in core and before every shard expansion
// in the MINDIST frontier walk).
type countdownCtx struct {
	context.Context
	remaining int64
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt64(&c.remaining, -1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestKNearestCancellation pins the KNearest cancellation contract on all
// four flavors: an already-cancelled context returns ctx.Err() before any
// expansion, and a cancellation landing mid-walk surfaces as ctx.Err()
// instead of a result.
func TestKNearestCancellation(t *testing.T) {
	flavors := knnFlavors(t, 4000)
	q := Pt(0.5, 0.5)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, f := range flavors {
		ids, _, err := f.knn(cancelled, q, 10)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-cancelled KNearest err = %v, want context.Canceled", f.name, err)
		}
		if ids != nil {
			t.Errorf("%s: pre-cancelled KNearest returned %d ids", f.name, len(ids))
		}

		// Sanity: the same call completes on a live context.
		ids, _, err = f.knn(context.Background(), q, 500)
		if err != nil || len(ids) != 500 {
			t.Fatalf("%s: live KNearest = %d ids, err %v", f.name, len(ids), err)
		}

		// Mid-walk: allow the first few checks, then cancel. k = 500 forces
		// hundreds of candidate pops (several cancelStride boundaries) and,
		// on the sharded backend, several frontier expansions.
		mid := &countdownCtx{Context: context.Background(), remaining: 2}
		ids, st, err := f.knn(mid, q, 500)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: mid-walk cancel err = %v, want context.Canceled", f.name, err)
		}
		if ids != nil {
			t.Errorf("%s: cancelled KNearest returned partial ids", f.name)
		}
		if st.Candidates < 0 || st.Candidates >= 500 {
			t.Errorf("%s: cancelled KNearest stats implausible: %+v", f.name, st)
		}
	}
}
