package vaq

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func sorted(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := UniformPoints(rng, 5000, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 5000 {
		t.Errorf("Len = %d", eng.Len())
	}
	if eng.Bounds() != UnitSquare() {
		t.Errorf("Bounds = %v", eng.Bounds())
	}
	area := RandomQueryPolygon(rng, 10, 0.02, UnitSquare())
	var stats Stats
	ids, err := eng.Query(context.Background(), PolygonRegion(area), WithStatsInto(&stats))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Method != VoronoiBFS {
		t.Errorf("default method = %v", stats.Method)
	}
	// Every returned point is inside; every omitted point outside.
	inIDs := make(map[int64]bool)
	for _, id := range ids {
		inIDs[id] = true
		if !area.ContainsPoint(eng.Point(id)) {
			t.Errorf("returned id %d outside area", id)
		}
	}
	for i, p := range pts {
		if area.ContainsPoint(p) && !inIDs[int64(i)] {
			t.Errorf("point %d inside area but missing from result", i)
		}
	}
}

func TestMethodsAgreeViaPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := UniformPoints(rng, 3000, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	area := RandomQueryPolygon(rng, 10, 0.05, UnitSquare())
	var want []int64
	for i, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict, BruteForce} {
		got, _, err := queryWith(eng, m, area)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		g := sorted(got)
		if i == 0 {
			want = g
		} else if !equal(g, want) {
			t.Fatalf("%v disagrees with Traditional", m)
		}
	}
}

func TestAllIndexKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := UniformPoints(rng, 1000, UnitSquare())
	area := RandomQueryPolygon(rng, 8, 0.05, UnitSquare())
	var want []int64
	for i, kind := range []IndexKind{RTreeIndex, RStarIndex, KDTreeIndex, QuadtreeIndex, GridIndex} {
		eng, err := NewEngine(pts, UnitSquare(), WithIndex(kind))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got, err := eng.Query(context.Background(), PolygonRegion(area))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		g := sorted(got)
		if i == 0 {
			want = g
		} else if !equal(g, want) {
			t.Fatalf("index %v disagrees", kind)
		}
	}
	if _, err := NewEngine(pts, UnitSquare(), WithIndex(IndexKind(9))); err == nil {
		t.Error("unknown index kind should fail")
	}
}

func TestIndexKindString(t *testing.T) {
	names := map[IndexKind]string{
		RTreeIndex: "rtree", RStarIndex: "rstar", KDTreeIndex: "kdtree",
		QuadtreeIndex: "quadtree", GridIndex: "grid",
		IndexKind(9): "index(9)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestWithStoreIOVisible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := UniformPoints(rng, 2000, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare(), WithStore(StoreConfig{
		PageSize:     1024,
		PoolPages:    8,
		PayloadBytes: 32,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := eng.IOStats(); !ok {
		t.Fatal("IOStats should be available with WithStore")
	}
	area := RandomQueryPolygon(rng, 10, 0.05, UnitSquare())
	if _, err := eng.Query(context.Background(), PolygonRegion(area)); err != nil {
		t.Fatal(err)
	}
	reads, _, _ := eng.IOStats()
	if reads == 0 {
		t.Error("expected page reads after a query")
	}
	eng.ResetIOStats()
	if reads2, _, _ := eng.IOStats(); reads2 != 0 {
		t.Error("ResetIOStats did not zero counters")
	}
	// Engines without a store report !ok and tolerate Reset.
	eng2, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := eng2.IOStats(); ok {
		t.Error("IOStats should be unavailable without WithStore")
	}
	eng2.ResetIOStats() // must not panic
}

func TestDuplicatePointsError(t *testing.T) {
	pts := []Point{Pt(0.5, 0.5), Pt(0.5, 0.5), Pt(0.1, 0.1)}
	if _, err := NewEngine(pts, UnitSquare()); err == nil {
		t.Error("duplicate points should be rejected")
	}
}

func TestClusteredWorkloadEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := ClusteredPoints(rng, 3000, 6, 0.03, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	area := RandomQueryPolygon(rng, 10, 0.04, UnitSquare())
	a, _, err := queryWith(eng, Traditional, area)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := queryWith(eng, VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(sorted(a), sorted(b)) {
		t.Error("methods disagree on clustered data")
	}
}

func TestRenderQuerySVG(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := UniformPoints(rng, 400, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	area := RandomQueryPolygon(rng, 10, 0.08, UnitSquare())
	var buf bytes.Buffer
	if err := eng.RenderQuerySVG(&buf, area, RenderOptions{
		DrawCells:    true,
		DrawDelaunay: true,
		DrawMBR:      true,
	}); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<circle", "<polygon", "<path", "<rect"} {
		if !strings.Contains(doc, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Result points (black) and shell points (green) should both exist for
	// a query of this size.
	if !strings.Contains(doc, `fill="black"`) {
		t.Error("no result points rendered")
	}
	if !strings.Contains(doc, `fill="#00aa44"`) {
		t.Error("no candidate-shell points rendered")
	}
}

func TestDynamicEnginePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	eng := NewDynamicEngine(UnitSquare())
	if eng.Universe() != UnitSquare() {
		t.Error("Universe mismatch")
	}
	var ids []int64
	for i := 0; i < 1000; i++ {
		id, ins, err := eng.Insert(Pt(rng.Float64(), rng.Float64()))
		if err != nil || !ins {
			t.Fatalf("insert %d: ins=%v err=%v", i, ins, err)
		}
		ids = append(ids, id)
	}
	if eng.Len() != 1000 {
		t.Fatalf("Len = %d", eng.Len())
	}
	area := RandomQueryPolygon(rng, 10, 0.05, UnitSquare())
	a, err := eng.Query(context.Background(), PolygonRegion(area))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := queryWith(eng, BruteForce, area)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(sorted(a), sorted(b)) {
		t.Error("dynamic query diverges from oracle")
	}
	// Result points are really inside.
	for _, id := range a {
		if !area.ContainsPoint(eng.Point(id)) {
			t.Errorf("result %d outside area", id)
		}
	}
	_ = ids
}

func TestPointOKPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := UniformPoints(rng, 500, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedEngine(pts, UnitSquare(), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		pointOK func(id int64) (Point, bool)
		point   func(id int64) Point
	}{
		{"engine", eng.PointOK, eng.Point},
		{"sharded", sharded.PointOK, sharded.Point},
	} {
		if p, ok := tc.pointOK(0); !ok || p != pts[0] {
			t.Errorf("%s: PointOK(0) = %v, %v", tc.name, p, ok)
		}
		if p, ok := tc.pointOK(499); !ok || p != pts[499] {
			t.Errorf("%s: PointOK(499) = %v, %v", tc.name, p, ok)
		}
		for _, bad := range []int64{-1, 500, 1 << 40} {
			if _, ok := tc.pointOK(bad); ok {
				t.Errorf("%s: PointOK(%d) should report false", tc.name, bad)
			}
		}
		if got := tc.point(42); got != pts[42] {
			t.Errorf("%s: Point(42) = %v, want %v", tc.name, got, pts[42])
		}
	}

	// The dynamic flavors: ids come from Insert, fence sites and unknown
	// ids report false.
	dyn := NewDynamicEngine(UnitSquare())
	id, _, err := dyn.Insert(Pt(0.25, 0.75))
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := dyn.PointOK(id); !ok || p != Pt(0.25, 0.75) {
		t.Errorf("dynamic: PointOK(%d) = %v, %v", id, p, ok)
	}
	snap := dyn.Snapshot()
	if p, ok := snap.PointOK(id); !ok || p != Pt(0.25, 0.75) {
		t.Errorf("snapshot: PointOK(%d) = %v, %v", id, p, ok)
	}
	for _, bad := range []int64{-1, 0, id + 1000} {
		if _, ok := dyn.PointOK(bad); ok {
			t.Errorf("dynamic: PointOK(%d) should report false", bad)
		}
		if _, ok := snap.PointOK(bad); ok {
			t.Errorf("snapshot: PointOK(%d) should report false", bad)
		}
	}
}

func TestCountAndBatchPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := UniformPoints(rng, 800, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	areas := []Polygon{
		RandomQueryPolygon(rng, 10, 0.02, UnitSquare()),
		RandomQueryPolygon(rng, 10, 0.08, UnitSquare()),
	}
	n, _, err := countOf(eng, VoronoiBFS, areas[0])
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := queryWith(eng, VoronoiBFS, areas[0])
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ids) {
		t.Errorf("Count = %d, Query len = %d", n, len(ids))
	}
	results, agg, err := queryBatch(eng, Traditional, areas)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || agg.ResultSize != len(results[0])+len(results[1]) {
		t.Errorf("batch aggregate broken: %d results, agg %d", len(results), agg.ResultSize)
	}
}

func TestQueryCirclePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := UniformPoints(rng, 2000, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCircle(Pt(0.5, 0.5), 0.15)
	var want []int64
	for i, p := range pts {
		if c.ContainsPoint(p) {
			want = append(want, int64(i))
		}
	}
	for _, m := range []Method{Traditional, VoronoiBFS, BruteForce} {
		got, _, err := queryCircle(eng, m, c)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !equal(sorted(got), want) {
			t.Fatalf("%v circle query: %d results, want %d", m, len(got), len(want))
		}
	}
}

func TestKNearestPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := UniformPoints(rng, 1000, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	q := Pt(0.3, 0.7)
	got, st, err := eng.KNearest(context.Background(), q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 || st.Candidates != 7 {
		t.Fatalf("KNearest: %d results, %d candidates", len(got), st.Candidates)
	}
	for i := 1; i < len(got); i++ {
		if q.Dist2(pts[got[i-1]]) > q.Dist2(pts[got[i]]) {
			t.Fatal("KNearest not ordered")
		}
	}
	// Rank 1 matches a linear scan.
	best := 0
	for i, p := range pts {
		if q.Dist2(p) < q.Dist2(pts[best]) {
			best = i
		}
	}
	if got[0] != int64(best) {
		t.Errorf("nearest = %d, want %d", got[0], best)
	}
}

func TestDiagramAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := UniformPoints(rng, 100, UnitSquare())
	for _, opts := range [][]Option{nil, {WithStore(StoreConfig{})}} {
		eng, err := NewEngine(pts, UnitSquare(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		d := eng.Diagram()
		if d == nil || d.NumSites() != 100 {
			t.Fatal("Diagram accessor broken")
		}
	}
}
