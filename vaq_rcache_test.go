package vaq

import (
	"context"
	"math/rand"
	"slices"
	"sync"
	"testing"
)

// buildCachedFlavors is buildFlavors with a ResultCache attached to every
// backend (the snapshot flavor inherits the dynamic engine's).
func buildCachedFlavors(t *testing.T, pts []Point, rc *ResultCache) []querierFlavor {
	t.Helper()
	eng, err := NewEngine(pts, UnitSquare(), WithResultCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedEngine(pts, UnitSquare(), WithShards(7), WithResultCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	dyn := NewDynamicEngine(UnitSquare(), WithResultCache(rc))
	toGlobal := make(map[int64]int64, len(pts))
	for i, p := range pts {
		id, inserted, err := dyn.Insert(p)
		if err != nil || !inserted {
			t.Fatalf("insert %d: inserted=%v err=%v", i, inserted, err)
		}
		toGlobal[id] = int64(i)
	}
	return []querierFlavor{
		{name: "engine", q: eng},
		{name: "sharded", q: sharded},
		{name: "dynamic", q: dyn, toGlobal: toGlobal},
		{name: "snapshot", q: dyn.Snapshot(), toGlobal: toGlobal},
	}
}

// TestResultCacheByteIdentical pins the acceptance criterion: with a cache
// attached, results are byte-identical to an uncached backend on every
// flavor × method × option set — on the populating miss and again on the
// memoized hit.
func TestResultCacheByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	pts := UniformPoints(rng, 2000, UnitSquare())
	plain := buildFlavors(t, pts)
	rc := NewResultCache(256)
	cached := buildCachedFlavors(t, pts, rc)
	ctx := context.Background()

	regions := map[string]Region{
		"polygon": PolygonRegion(RandomQueryPolygon(rng, 10, 0.04, UnitSquare())),
		"circle":  CircleRegion(NewCircle(Pt(0.55, 0.45), 0.15)),
	}

	for rname, region := range regions {
		for fi := range cached {
			pf, cf := &plain[fi], &cached[fi]
			for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict, BruteForce} {
				name := cf.name + "/" + rname + "/" + m.String()

				want, err := pf.q.Query(ctx, region, UsingMethod(m))
				if err != nil {
					t.Fatalf("%s: uncached: %v", name, err)
				}
				// Twice: first populates (miss), second serves from cache.
				for pass, label := range []string{"miss", "hit"} {
					var st Stats
					got, err := cf.q.Query(ctx, region, UsingMethod(m), WithStatsInto(&st))
					if err != nil {
						t.Fatalf("%s/%s: %v", name, label, err)
					}
					if !slices.Equal(got, want) {
						t.Fatalf("%s/%s: %d ids, uncached %d — not byte-identical", name, label, len(got), len(want))
					}
					if st.ResultSize != len(want) {
						t.Errorf("%s/%s: stats.ResultSize = %d, want %d", name, label, st.ResultSize, len(want))
					}
					_ = pass
				}

				// CountOnly memoizes separately from the materialized result.
				wantN, err := Count(ctx, pf.q, region, UsingMethod(m))
				if err != nil {
					t.Fatal(err)
				}
				for _, label := range []string{"miss", "hit"} {
					n, err := Count(ctx, cf.q, region, UsingMethod(m))
					if err != nil || n != wantN {
						t.Fatalf("%s/count/%s: %d (err %v), want %d", name, label, n, err, wantN)
					}
				}

				// Reuse on a hit: memoized ids are copied into the buffer.
				buf := make([]int64, 0, len(want)+8)
				got, err := cf.q.Query(ctx, region, UsingMethod(m), Reuse(buf))
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(got, want) {
					t.Fatalf("%s: Reuse hit diverged", name)
				}
				if len(got) > 0 && &got[0] != &buf[:1][0] {
					t.Errorf("%s: Reuse hit did not use the caller's buffer", name)
				}
			}
		}
	}

	cst := rc.Stats()
	if cst.Hits == 0 || cst.Misses == 0 {
		t.Fatalf("cache was not exercised: %+v", cst)
	}
}

// TestResultCacheStatsMemoized pins that a hit reproduces the statistics
// of the execution that populated the entry.
func TestResultCacheStatsMemoized(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	pts := UniformPoints(rng, 1500, UnitSquare())
	rc := NewResultCache(64)
	eng, err := NewEngine(pts, UnitSquare(), WithResultCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	region := PolygonRegion(RandomQueryPolygon(rng, 10, 0.05, UnitSquare()))
	ctx := context.Background()

	var miss, hit Stats
	if _, err := eng.Query(ctx, region, WithStatsInto(&miss)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, region, WithStatsInto(&hit)); err != nil {
		t.Fatal(err)
	}
	if hit != miss {
		t.Fatalf("hit stats %+v differ from populating stats %+v", hit, miss)
	}
	if got := rc.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("counters %+v, want 1 hit / 1 miss", got)
	}
}

// opaqueRegion hides any CacheKeyer implementation of the wrapped Region:
// embedding the interface promotes only the interface's methods, so the
// cache must treat it as unkeyable and bypass.
type opaqueRegion struct{ Region }

// TestResultCacheBypasses pins the two bypass classes — limited queries
// and unkeyable regions — and that bypassed queries still return correct,
// uncached results.
func TestResultCacheBypasses(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	pts := UniformPoints(rng, 1500, UnitSquare())
	rc := NewResultCache(64)
	eng, err := NewEngine(pts, UnitSquare(), WithResultCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	region := PolygonRegion(RandomQueryPolygon(rng, 10, 0.05, UnitSquare()))
	want, err := eng.Query(ctx, region)
	if err != nil {
		t.Fatal(err)
	}
	base := rc.Stats()

	// Limit bypasses: two identical limited queries both execute.
	for i := 0; i < 2; i++ {
		got, err := eng.Query(ctx, region, Limit(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("Limit(3) returned %d ids", len(got))
		}
	}
	// Unkeyable region bypasses, result still exact.
	got, err := eng.Query(ctx, opaqueRegion{region})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatal("opaque-region result diverged")
	}

	st := rc.Stats()
	if st.Bypasses != base.Bypasses+3 {
		t.Fatalf("bypasses = %d, want %d", st.Bypasses, base.Bypasses+3)
	}
	if st.Hits != base.Hits || st.Misses != base.Misses {
		t.Fatalf("bypassed queries touched the cache: %+v vs %+v", st, base)
	}
}

// TestResultCacheSharedAcrossEngines pins the per-engine salt: two engines
// over different datasets share one cache and the same region, yet each
// keeps serving its own result.
func TestResultCacheSharedAcrossEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	ptsA := UniformPoints(rng, 1000, UnitSquare())
	ptsB := UniformPoints(rng, 1300, UnitSquare())
	rc := NewResultCache(64)
	engA, err := NewEngine(ptsA, UnitSquare(), WithResultCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	engB, err := NewEngine(ptsB, UnitSquare(), WithResultCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	region := CircleRegion(NewCircle(Pt(0.5, 0.5), 0.25))

	wantA, _ := engA.Query(ctx, region)
	wantB, _ := engB.Query(ctx, region)
	if slices.Equal(wantA, wantB) {
		t.Fatal("datasets accidentally agree; test is vacuous")
	}
	// Both entries now populated; re-query each engine twice from cache.
	for i := 0; i < 2; i++ {
		gotA, _ := engA.Query(ctx, region)
		gotB, _ := engB.Query(ctx, region)
		if !slices.Equal(gotA, wantA) || !slices.Equal(gotB, wantB) {
			t.Fatal("shared cache crossed engine boundaries")
		}
	}
}

// TestResultCacheInvalidationOnInsert pins the epoch keying
// deterministically: a memoized dynamic-engine result must not be served
// after an Insert that changes it.
func TestResultCacheInvalidationOnInsert(t *testing.T) {
	rc := NewResultCache(64)
	dyn := NewDynamicEngine(UnitSquare(), WithResultCache(rc))
	rng := rand.New(rand.NewSource(85))
	for _, p := range UniformPoints(rng, 500, UnitSquare()) {
		if _, _, err := dyn.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	region := CircleRegion(NewCircle(Pt(0.5, 0.5), 0.2))

	before, err := dyn.Query(ctx, region)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then insert a point dead center — inside the region.
	if _, err := dyn.Query(ctx, region); err != nil {
		t.Fatal(err)
	}
	id, inserted, err := dyn.Insert(Pt(0.5, 0.5))
	if err != nil || !inserted {
		t.Fatalf("insert: %v (inserted=%v)", err, inserted)
	}
	after, err := dyn.Query(ctx, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 || !slices.Contains(after, id) {
		t.Fatalf("stale result served after Insert: before %d ids, after %d (new id %d present: %v)",
			len(before), len(after), id, slices.Contains(after, id))
	}
}

// TestResultCacheDynamicRaceSoak runs concurrent inserts against cached
// snapshot queries and checks every cached result against an exact oracle
// over the same pinned snapshot — under -race (CI runs the suite with it),
// this proves no stale epoch is ever served while the epoch advances.
func TestResultCacheDynamicRaceSoak(t *testing.T) {
	rc := NewResultCache(256)
	dyn := NewDynamicEngine(UnitSquare(), WithResultCache(rc))
	rng := rand.New(rand.NewSource(86))
	seedPts := UniformPoints(rng, 300, UnitSquare())
	for _, p := range seedPts[:100] {
		if _, _, err := dyn.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	region := CircleRegion(NewCircle(Pt(0.5, 0.5), 0.3))
	ctx := context.Background()

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for _, p := range seedPts[100:] {
			if _, _, err := dyn.Insert(p); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Pin one epoch; the cached query and the oracle must agree
				// on it no matter how far the writer has advanced.
				snap := dyn.Snapshot()
				got, err := snap.Query(ctx, region)
				if err != nil {
					t.Errorf("snapshot query: %v", err)
					return
				}
				var want []int64
				snap.EachPoint(func(id int64, p Point) bool {
					if region.ContainsPoint(p) {
						want = append(want, id)
					}
					return true
				})
				if !slices.Equal(got, want) {
					t.Errorf("epoch %d: cached result has %d ids, oracle %d — stale entry served",
						snap.Epoch(), len(got), len(want))
					return
				}
			}
		}()
	}
	wg.Wait()

	if st := rc.Stats(); st.Lookups() == 0 {
		t.Fatal("soak never touched the cache")
	}
}
