package vaq

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/storage"
)

// Flavor labels used in metric names and traces: one per Querier backend.
// DynamicEngine and its Snapshots share "dynamic" — a Snapshot query is a
// dynamic-engine query pinned to an epoch, not a distinct backend.
const (
	flavorStatic  = "static"
	flavorSharded = "sharded"
	flavorDynamic = "dynamic"
	flavorRemote  = "remote"
)

// MetricsRegistry collects engine metrics: atomic counters, gauges and
// latency histograms with percentile snapshots. One registry may be shared
// by any number of engines of any flavor — per-query counters carry
// {flavor=...,method=...} labels in their names and aggregate across
// engines of the same flavor, while snapshot-time collectors (buffer pool,
// result cache, dynamic epoch) reflect the most recently constructed
// engine of each flavor. Read it with Snapshot or serve it over HTTP with
// MetricsHandler. All methods are safe for concurrent use; a nil registry
// is inert.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time copy of a registry's metrics:
// counters, gauges, and histogram summaries (count/mean/p50/p90/p99/max).
type MetricsSnapshot = obs.Snapshot

// QueryTrace records the phase timeline of one traced query — candidate
// generation, BFS expansion, page fetches, cache lookup, merge — plus
// fan-out and cache-hit markers. Attach one to a query with WithTraceInto
// and read it (or log its String one-liner) after the call returns. A
// QueryTrace may be reused across queries: each traced query resets it.
type QueryTrace = obs.QueryTrace

// NewMetricsRegistry returns an empty metrics registry for WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsHandler serves reg over HTTP: an expvar-compatible JSON snapshot
// by default, or Prometheus text exposition with ?format=prom (or an
// Accept header preferring text/plain). Mount it anywhere:
//
//	reg := vaq.NewMetricsRegistry()
//	eng, _ := vaq.NewEngine(points, bounds, vaq.WithMetrics(reg))
//	http.Handle("/metrics", vaq.MetricsHandler(reg))
func MetricsHandler(reg *MetricsRegistry) http.Handler { return obs.Handler(reg) }

// WithMetrics instruments the engine under construction with reg: query
// counts, latencies, errors and cancellations by method; batch and
// worker-pool behavior; and snapshot-time collectors lifting the buffer
// pool, result cache and (for dynamic engines) epoch state. Without this
// option — or with a nil reg — the engine runs fully uninstrumented: the
// disabled path costs one nil pointer comparison per query, no atomics.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(c *config) { c.metrics = reg }
}

// numMethodSlots is the per-method metric fan: the four known methods plus
// one shared "other" slot for out-of-range Method values.
const numMethodSlots = 5

// methodSlot maps a Method to its metric slot.
func methodSlot(m Method) int {
	if m >= 0 && int(m) < numMethodSlots-1 {
		return int(m)
	}
	return numMethodSlots - 1
}

// methodLabel returns the label value of a metric slot.
func methodLabel(slot int) string {
	if slot < numMethodSlots-1 {
		return Method(slot).String()
	}
	return "other"
}

// queryMetrics is one engine's pre-resolved handle set into a registry:
// every per-query metric is looked up once at construction so the query
// hot path touches only atomics. A nil *queryMetrics disables everything
// (all methods are nil-safe).
type queryMetrics struct {
	flavor string

	queries       [numMethodSlots]*obs.Counter
	errs          [numMethodSlots]*obs.Counter
	cancels       [numMethodSlots]*obs.Counter
	latency       [numMethodSlots]*obs.Histogram
	candidates    [numMethodSlots]*obs.Counter
	results       [numMethodSlots]*obs.Counter
	recordsLoaded [numMethodSlots]*obs.Counter

	batches      *obs.Counter
	batchLatency *obs.Histogram

	execM *exec.Metrics
}

// newQueryMetrics resolves the per-query metric handles for one flavor.
// Same-name metrics are shared registry-wide, so two engines of one flavor
// on one registry aggregate naturally.
func newQueryMetrics(reg *obs.Registry, flavor string) *queryMetrics {
	if reg == nil {
		return nil
	}
	qm := &queryMetrics{flavor: flavor, execM: newExecMetrics(reg, flavor)}
	for slot := 0; slot < numMethodSlots; slot++ {
		lbl := fmt.Sprintf("{flavor=%q,method=%q}", flavor, methodLabel(slot))
		qm.queries[slot] = reg.Counter("vaq_queries_total" + lbl)
		qm.errs[slot] = reg.Counter("vaq_query_errors_total" + lbl)
		qm.cancels[slot] = reg.Counter("vaq_query_cancellations_total" + lbl)
		qm.latency[slot] = reg.Histogram("vaq_query_latency_ns" + lbl)
		qm.candidates[slot] = reg.Counter("vaq_query_candidates_total" + lbl)
		qm.results[slot] = reg.Counter("vaq_query_results_total" + lbl)
		qm.recordsLoaded[slot] = reg.Counter("vaq_query_records_loaded_total" + lbl)
	}
	fl := fmt.Sprintf("{flavor=%q}", flavor)
	qm.batches = reg.Counter("vaq_batches_total" + fl)
	qm.batchLatency = reg.Histogram("vaq_batch_latency_ns" + fl)
	return qm
}

// exec returns the worker-pool metric set (nil when uninstrumented), for
// threading into exec.Options.
func (qm *queryMetrics) exec() *exec.Metrics {
	if qm == nil {
		return nil
	}
	return qm.execM
}

// observe records one completed query: count, latency, the work counters
// from its Stats, and the error classification (context cancellation and
// deadline expiry count as cancellations, everything else as errors).
func (qm *queryMetrics) observe(m Method, d time.Duration, st *Stats, err error) {
	if qm == nil {
		return
	}
	slot := methodSlot(m)
	qm.queries[slot].Inc()
	qm.latency[slot].Observe(d)
	qm.addWork(slot, st)
	qm.countOutcome(slot, err)
}

// observeBatch records one completed QueryAll: the batch itself (count and
// wall-clock latency), its n submitted queries, and the aggregate work
// counters. Per-query latency is not observed for batch members — their
// durations overlap on the worker pool; vaq_batch_latency_ns holds the
// batch wall clock instead.
func (qm *queryMetrics) observeBatch(m Method, n int, d time.Duration, st *Stats, err error) {
	if qm == nil {
		return
	}
	slot := methodSlot(m)
	qm.batches.Inc()
	qm.batchLatency.Observe(d)
	qm.queries[slot].Add(uint64(n))
	qm.addWork(slot, st)
	qm.countOutcome(slot, err)
}

func (qm *queryMetrics) addWork(slot int, st *Stats) {
	qm.candidates[slot].Add(uint64(st.Candidates))
	qm.results[slot].Add(uint64(st.ResultSize))
	qm.recordsLoaded[slot].Add(uint64(st.RecordsLoaded))
}

func (qm *queryMetrics) countOutcome(slot int, err error) {
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		qm.cancels[slot].Inc()
	default:
		qm.errs[slot].Inc()
	}
}

// beginQuery starts the per-query clock when instrumentation is on —
// a registry handle set, a caller trace, or both. The zero time means
// "off"; endQuery and endBatch no-op on it, so the uninstrumented path
// performs no clock reads.
func beginQuery(qm *queryMetrics, p *queryPlan, flavor string) time.Time {
	if qm == nil && p.trace == nil {
		return time.Time{}
	}
	p.trace.Begin(flavor, p.method.String())
	return time.Now()
}

// endQuery finishes what beginQuery started: trace Finish and the registry
// observation.
func endQuery(qm *queryMetrics, p *queryPlan, start time.Time, st *Stats, err error) {
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	p.trace.Finish(d, st.Candidates, st.ResultSize)
	qm.observe(p.method, d, st, err)
}

// endBatch is endQuery for a QueryAll of n regions.
func endBatch(qm *queryMetrics, p *queryPlan, start time.Time, n int, st *Stats, err error) {
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	p.trace.Finish(d, st.Candidates, st.ResultSize)
	qm.observeBatch(p.method, n, d, st, err)
}

// newExecMetrics resolves the worker-pool metric set for one flavor.
func newExecMetrics(reg *obs.Registry, flavor string) *exec.Metrics {
	fl := fmt.Sprintf("{flavor=%q}", flavor)
	return &exec.Metrics{
		Tasks:         reg.Counter("vaq_exec_tasks_total" + fl),
		Chunks:        reg.Counter("vaq_exec_chunks_total" + fl),
		ChunkWait:     reg.Histogram("vaq_exec_chunk_wait_ns" + fl),
		WorkerBusy:    reg.Histogram("vaq_exec_worker_busy_ns" + fl),
		ActiveWorkers: reg.Gauge("vaq_exec_active_workers" + fl),
	}
}

// newShardMetrics resolves the scatter-gather metric set for a sharded
// engine, sharing the flavor's exec metrics so scatter tasks and batch
// tasks land in one pool view.
func newShardMetrics(reg *obs.Registry, flavor string, execM *exec.Metrics) *shard.Metrics {
	fl := fmt.Sprintf("{flavor=%q}", flavor)
	return &shard.Metrics{
		FanOut:       reg.Histogram("vaq_shard_fanout" + fl),
		ShardsPruned: reg.Counter("vaq_shard_pruned_total" + fl),
		ShardQueries: reg.Counter("vaq_shard_queries_total" + fl),
		ShardLatency: reg.Histogram("vaq_shard_latency_ns" + fl),
		Exec:         execM,
	}
}

// registerPoolMetrics lifts a store's cumulative BufferPoolStats into the
// registry as snapshot-time collectors: the pool keeps its existing
// counters and pays nothing new on the hot path; each registry snapshot
// reads them through stats.
func registerPoolMetrics(reg *obs.Registry, flavor string, stats func() storage.BufferPoolStats) {
	fl := fmt.Sprintf("{flavor=%q}", flavor)
	reg.RegisterGaugeFunc("vaq_bufpool_page_reads_total"+fl, func() float64 { return float64(stats().PageReads) })
	reg.RegisterGaugeFunc("vaq_bufpool_cache_hits_total"+fl, func() float64 { return float64(stats().CacheHits) })
	reg.RegisterGaugeFunc("vaq_bufpool_evictions_total"+fl, func() float64 { return float64(stats().Evictions) })
	reg.RegisterGaugeFunc("vaq_bufpool_singleflight_joins_total"+fl, func() float64 { return float64(stats().SingleflightJoins) })
	reg.RegisterGaugeFunc("vaq_bufpool_bytes_read_total"+fl, func() float64 { return float64(stats().BytesRead) })
	reg.RegisterGaugeFunc("vaq_bufpool_hit_rate"+fl, func() float64 { return stats().HitRate() })
}

// registerShardedPoolMetrics registers pool collectors summing every
// shard's private store; a no-op when the engine is not store-backed.
func registerShardedPoolMetrics(reg *obs.Registry, flavor string, stores []*core.StoreData) {
	if len(stores) == 0 {
		return
	}
	for _, sd := range stores {
		if sd == nil {
			return
		}
	}
	registerPoolMetrics(reg, flavor, func() storage.BufferPoolStats {
		var agg storage.BufferPoolStats
		for _, sd := range stores {
			st := sd.IOStats()
			agg.PageReads += st.PageReads
			agg.CacheHits += st.CacheHits
			agg.Evictions += st.Evictions
			agg.SingleflightJoins += st.SingleflightJoins
			agg.BytesRead += st.BytesRead
		}
		return agg
	})
}

// registerCacheMetrics lifts a result cache's counters into the registry
// as snapshot-time collectors.
func registerCacheMetrics(reg *obs.Registry, flavor string, rc *ResultCache) {
	fl := fmt.Sprintf("{flavor=%q}", flavor)
	reg.RegisterGaugeFunc("vaq_rcache_hits_total"+fl, func() float64 { return float64(rc.Stats().Hits) })
	reg.RegisterGaugeFunc("vaq_rcache_misses_total"+fl, func() float64 { return float64(rc.Stats().Misses) })
	reg.RegisterGaugeFunc("vaq_rcache_evictions_total"+fl, func() float64 { return float64(rc.Stats().Evictions) })
	reg.RegisterGaugeFunc("vaq_rcache_bypasses_total"+fl, func() float64 { return float64(rc.Stats().Bypasses) })
	reg.RegisterGaugeFunc("vaq_rcache_hit_rate"+fl, func() float64 { return rc.Stats().HitRate() })
	reg.RegisterGaugeFunc("vaq_rcache_entries"+fl, func() float64 { return float64(rc.Len()) })
}

// registerDynamicMetrics attaches the epoch-publish histogram and the
// epoch/snapshot-age collectors of one dynamic engine. The epoch gauge is
// also the point count — every accepted insert bumps the epoch by one.
func registerDynamicMetrics(reg *obs.Registry, d *core.DynamicEngine) {
	fl := fmt.Sprintf("{flavor=%q}", flavorDynamic)
	d.SetPublishMetrics(reg.Histogram("vaq_dynamic_publish_latency_ns" + fl))
	reg.RegisterGaugeFunc("vaq_dynamic_epoch"+fl, func() float64 { return float64(d.Epoch()) })
	reg.RegisterGaugeFunc("vaq_dynamic_snapshot_age_seconds"+fl, func() float64 {
		t, ok := d.LastPublish()
		if !ok {
			return 0
		}
		return time.Since(t).Seconds()
	})
}
