package vaq_test

// The remote conformance suite: a RemoteEngine fanned out over areaserve
// backends must answer every query byte-identically to a local engine
// over the union of the backends' points — plus the wire-specific
// contracts no local flavor has: deadline propagation into the server,
// cancellation over the wire, mid-stream disconnects, retry and the
// degraded partial-failure policy.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	vaq "repro"
	"repro/internal/serve"
	"repro/internal/wire"
)

// remoteFixture is a dataset split into contiguous chunks, each served by
// its own in-process areaserve handler, plus the local oracle over the
// whole dataset.
type remoteFixture struct {
	pts    []vaq.Point
	local  *vaq.Engine
	urls   []string
	chunks []*vaq.Engine // per-backend engines, for direct inspection
}

// startFixture splits pts at the given cut indexes (uneven on purpose —
// even splits hide id-offset bugs) and serves each chunk.
func startFixture(t *testing.T, pts []vaq.Point, cuts ...int) *remoteFixture {
	t.Helper()
	local, err := vaq.NewEngine(pts, vaq.UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	f := &remoteFixture{pts: pts, local: local}
	starts := append([]int{0}, cuts...)
	for i, start := range starts {
		end := len(pts)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		eng, err := vaq.NewEngine(pts[start:end], vaq.UnitSquare())
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(serve.NewHandler(eng, serve.Config{
			IDOffset: int64(start),
			Flavor:   "static",
		}))
		t.Cleanup(srv.Close)
		f.urls = append(f.urls, srv.URL)
		f.chunks = append(f.chunks, eng)
	}
	return f
}

func (f *remoteFixture) dial(t *testing.T, opts ...vaq.Option) *vaq.RemoteEngine {
	t.Helper()
	re, err := vaq.DialRemote(context.Background(), f.urls, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != len(f.pts) {
		t.Fatalf("remote engine advertises %d points, dataset has %d", re.Len(), len(f.pts))
	}
	return re
}

// remoteConformanceRegions mirrors the local suite's query shapes.
func remoteConformanceRegions(rng *rand.Rand) map[string]vaq.Region {
	return map[string]vaq.Region{
		"concave": vaq.PolygonRegion(vaq.RandomQueryPolygon(rng, 10, 0.05, vaq.UnitSquare())),
		"sliver": vaq.PolygonRegion(vaq.MustPolygon([]vaq.Point{
			vaq.Pt(0.10, 0.10), vaq.Pt(0.90, 0.12), vaq.Pt(0.90, 0.13),
			vaq.Pt(0.12, 0.125), vaq.Pt(0.11, 0.30), vaq.Pt(0.10, 0.30),
		})),
		"circle": vaq.CircleRegion(vaq.NewCircle(vaq.Pt(0.6, 0.4), 0.12)),
		"empty":  vaq.PolygonRegion(vaq.MustPolygon([]vaq.Point{vaq.Pt(0.0001, 0.0001), vaq.Pt(0.0002, 0.0001), vaq.Pt(0.0002, 0.0002)})),
	}
}

// TestRemoteConformance pins RemoteEngine byte-identical to the local
// oracle across methods × regions × options.
func TestRemoteConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := vaq.UniformPoints(rng, 2500, vaq.UnitSquare())
	f := startFixture(t, pts, 1000, 1600) // three uneven chunks
	re := f.dial(t)
	ctx := context.Background()

	for rname, region := range remoteConformanceRegions(rng) {
		oracle, err := f.local.Query(ctx, region)
		if err != nil {
			t.Fatalf("%s: local oracle: %v", rname, err)
		}
		for _, m := range []vaq.Method{vaq.Traditional, vaq.VoronoiBFS, vaq.VoronoiBFSStrict, vaq.BruteForce} {
			t.Run(rname+"/"+m.String(), func(t *testing.T) {
				var st vaq.Stats
				got, err := re.Query(ctx, region, vaq.UsingMethod(m), vaq.WithStatsInto(&st))
				if err != nil {
					t.Fatal(err)
				}
				localIDs, err := f.local.Query(ctx, region, vaq.UsingMethod(m))
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(got, localIDs) {
					t.Fatalf("Query: %d ids, local %d — not byte-identical", len(got), len(localIDs))
				}
				if st.ResultSize != len(got) {
					t.Errorf("stats.ResultSize = %d, want %d", st.ResultSize, len(got))
				}

				// CountOnly: nil ids, exact count.
				var cst vaq.Stats
				ids, err := re.Query(ctx, region, vaq.UsingMethod(m), vaq.CountOnly(), vaq.WithStatsInto(&cst))
				if err != nil {
					t.Fatal(err)
				}
				if ids != nil {
					t.Errorf("CountOnly returned %d ids, want nil", len(ids))
				}
				if cst.ResultSize != len(oracle) {
					t.Errorf("CountOnly count = %d, want %d", cst.ResultSize, len(oracle))
				}

				// Limit: exactly min(lim, total) valid matches, ascending.
				for _, lim := range []int{1, 3, len(oracle) + 10} {
					got, err := re.Query(ctx, region, vaq.UsingMethod(m), vaq.Limit(lim))
					if err != nil {
						t.Fatalf("Limit(%d): %v", lim, err)
					}
					want := min(lim, len(oracle))
					if len(got) != want {
						t.Fatalf("Limit(%d): %d ids, want %d", lim, len(got), want)
					}
					if !slices.IsSorted(got) {
						t.Fatalf("Limit(%d): ids not ascending", lim)
					}
					for _, id := range got {
						if _, ok := slices.BinarySearch(oracle, id); !ok {
							t.Fatalf("Limit(%d): id %d not in oracle", lim, id)
						}
					}
				}

				// Each: streamed set covers the oracle, every position
				// bit-exact from the wire.
				var streamed []int64
				err = re.Each(ctx, region, func(id int64, p vaq.Point) bool {
					streamed = append(streamed, id)
					if p != pts[id] {
						t.Fatalf("Each: id %d position %v, want %v (must be bit-exact)", id, p, pts[id])
					}
					return true
				}, vaq.UsingMethod(m))
				if err != nil {
					t.Fatal(err)
				}
				slices.Sort(streamed)
				if !slices.Equal(streamed, oracle) {
					t.Fatalf("Each streamed %d ids, oracle %d", len(streamed), len(oracle))
				}
			})
		}
	}
}

// TestRemoteQueryAll pins the batch entry point against per-region local
// queries, including the count-only form.
func TestRemoteQueryAll(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := vaq.UniformPoints(rng, 2000, vaq.UnitSquare())
	f := startFixture(t, pts, 900)
	re := f.dial(t)
	ctx := context.Background()

	regions := make([]vaq.Region, 8)
	for i := range regions {
		if i%3 == 2 {
			regions[i] = vaq.CircleRegion(vaq.NewCircle(vaq.Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64()), 0.08))
		} else {
			regions[i] = vaq.PolygonRegion(vaq.RandomQueryPolygon(rng, 8, 0.02, vaq.UnitSquare()))
		}
	}

	var agg vaq.Stats
	out, err := re.QueryAll(ctx, regions, vaq.WithStatsInto(&agg))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(regions) {
		t.Fatalf("%d results for %d regions", len(out), len(regions))
	}
	total := 0
	for i, region := range regions {
		want, err := f.local.Query(ctx, region)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(out[i], want) {
			t.Fatalf("batch result %d diverges from the local oracle", i)
		}
		total += len(want)
	}
	if agg.ResultSize != total {
		t.Errorf("aggregate ResultSize = %d, want %d", agg.ResultSize, total)
	}

	var cagg vaq.Stats
	cout, err := re.QueryAll(ctx, regions, vaq.CountOnly(), vaq.WithStatsInto(&cagg))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cout {
		if cout[i] != nil {
			t.Fatalf("CountOnly batch slice %d not nil", i)
		}
	}
	if cagg.ResultSize != total {
		t.Errorf("CountOnly aggregate = %d, want %d", cagg.ResultSize, total)
	}
}

// TestRemoteKNearest pins the fan-out KNN merge byte-identical to the
// local engine: same ids, same order, for ks spanning chunk boundaries.
func TestRemoteKNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := vaq.UniformPoints(rng, 1500, vaq.UnitSquare())
	f := startFixture(t, pts, 500, 1200)
	re := f.dial(t)
	ctx := context.Background()

	queries := []vaq.Point{
		vaq.Pt(0.5, 0.5), vaq.Pt(0.01, 0.99), vaq.Pt(0.73, 0.12), vaq.Pt(1.5, 0.5),
	}
	for _, q := range queries {
		for _, k := range []int{1, 7, 64} {
			want, _, err := f.local.KNearest(ctx, q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := re.KNearest(ctx, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("KNearest(%v, %d): diverges from local (got %v..., want %v...)",
					q, k, head(got), head(want))
			}
			if st.ResultSize != len(want) {
				t.Errorf("KNearest stats.ResultSize = %d, want %d", st.ResultSize, len(want))
			}
		}
	}
	if _, _, err := re.KNearest(ctx, vaq.Pt(0.5, 0.5), 0); err != nil {
		t.Errorf("k=0: %v", err)
	}
}

func head(ids []int64) []int64 {
	if len(ids) > 5 {
		return ids[:5]
	}
	return ids
}

// slowServeEngine wraps an engine, blocking Query until its context dies
// and recording whether that context carried a deadline.
type slowServeEngine struct {
	*vaq.Engine
	sawDeadline atomic.Bool
	entered     chan struct{} // closed once, on first Query entry
	once        atomic.Bool
}

func (s *slowServeEngine) Query(ctx context.Context, region vaq.Region, opts ...vaq.QueryOpt) ([]int64, error) {
	if _, ok := ctx.Deadline(); ok {
		s.sawDeadline.Store(true)
	}
	if s.once.CompareAndSwap(false, true) {
		close(s.entered)
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

func slowBackend(t *testing.T, n int) (*slowServeEngine, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	eng, err := vaq.NewEngine(vaq.UniformPoints(rng, n, vaq.UnitSquare()), vaq.UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowServeEngine{Engine: eng, entered: make(chan struct{})}
	srv := httptest.NewServer(serve.NewHandler(slow, serve.Config{}))
	t.Cleanup(srv.Close)
	return slow, srv.URL
}

// TestRemoteDeadlinePropagation verifies the deadline crosses the wire:
// the server-side query context carries a deadline (from the
// Vaq-Timeout-Ms header), and the caller gets context.DeadlineExceeded
// well before any transport-level timeout could fire.
func TestRemoteDeadlinePropagation(t *testing.T) {
	slow, url := slowBackend(t, 100)
	re, err := vaq.DialRemote(context.Background(), []string{url})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = re.Query(ctx, remoteConformanceRegions(rand.New(rand.NewSource(1)))["circle"])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline took %v to surface", d)
	}
	if !slow.sawDeadline.Load() {
		t.Error("server-side query context carried no deadline — header not propagated")
	}
}

// TestRemoteCancellationOverTheWire verifies a client-side cancel reaches
// the in-flight server query (the request context dies on disconnect) and
// surfaces as context.Canceled at the caller.
func TestRemoteCancellationOverTheWire(t *testing.T) {
	slow, url := slowBackend(t, 100)
	re, err := vaq.DialRemote(context.Background(), []string{url})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := re.Query(ctx, remoteConformanceRegions(rand.New(rand.NewSource(1)))["circle"])
		done <- err
	}()
	<-slow.entered // the query is live server-side
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation never surfaced")
	}
}

// TestRemoteEachEarlyStop verifies yield-stop mid-stream: the client
// stops consuming, Each returns nil, and nothing hangs.
func TestRemoteEachEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	pts := vaq.UniformPoints(rng, 1500, vaq.UnitSquare())
	f := startFixture(t, pts, 700)
	re := f.dial(t)

	whole := vaq.PolygonRegion(vaq.MustPolygon([]vaq.Point{
		vaq.Pt(-0.1, -0.1), vaq.Pt(1.1, -0.1), vaq.Pt(1.1, 1.1), vaq.Pt(-0.1, 1.1),
	}))
	seen := 0
	err := re.Each(context.Background(), whole, func(id int64, p vaq.Point) bool {
		seen++
		return seen < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("yield ran %d times after stopping at 5", seen)
	}
}

// TestRemoteEachTruncatedStream verifies the truncation contract: a
// backend that dies mid-stream (frames but no EOF frame) must surface an
// error, never pass as a complete result.
func TestRemoteEachTruncatedStream(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wire.Info{Len: 10, Bounds: [4]float64{0, 0, 1, 1}})
	})
	mux.HandleFunc("POST /v1/each", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"id":%d,"x":0.5,"y":0.5}`+"\n", i)
		}
		// ...and the backend dies: no EOF frame.
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	re, err := vaq.DialRemote(context.Background(), []string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	region := vaq.CircleRegion(vaq.NewCircle(vaq.Pt(0.5, 0.5), 0.2))
	err = re.Each(context.Background(), region, func(id int64, p vaq.Point) bool { return true })
	if err == nil {
		t.Fatal("truncated stream passed as complete")
	}
}

// flakyProxy fails the first n requests per path with a 500, then proxies
// to the real handler.
type flakyProxy struct {
	inner     http.Handler
	failures  atomic.Int64
	remaining atomic.Int64
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/") && r.Method == http.MethodPost {
		if p.remaining.Add(-1) >= 0 {
			p.failures.Add(1)
			http.Error(w, `{"code":"internal","message":"transient"}`, http.StatusInternalServerError)
			return
		}
	}
	p.inner.ServeHTTP(w, r)
}

// TestRemoteRetry verifies bounded retry-with-backoff: a backend that
// 500s twice then recovers answers correctly with retries enabled, and
// fails fast without them.
func TestRemoteRetry(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	pts := vaq.UniformPoints(rng, 600, vaq.UnitSquare())
	eng, err := vaq.NewEngine(pts, vaq.UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	proxy := &flakyProxy{inner: serve.NewHandler(eng, serve.Config{})}
	srv := httptest.NewServer(proxy)
	defer srv.Close()
	region := vaq.CircleRegion(vaq.NewCircle(vaq.Pt(0.5, 0.5), 0.2))
	want, err := eng.Query(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}

	// Without retries: the transient 500 is the caller's problem.
	proxy.remaining.Store(2)
	re, err := vaq.DialRemote(context.Background(), []string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.Query(context.Background(), region); err == nil {
		t.Fatal("no-retry query survived a 500")
	}

	// With retries: two failures are absorbed.
	proxy.remaining.Store(2)
	re, err = vaq.DialRemote(context.Background(), []string{srv.URL},
		vaq.WithRemoteRetries(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Query(context.Background(), region)
	if err != nil {
		t.Fatalf("retries did not absorb transient failures: %v", err)
	}
	if !slices.Equal(got, want) {
		t.Fatal("retried result diverges")
	}
}

// TestRemoteDegraded verifies the partial-failure policy: fail-fast
// errors when a backend is down; degraded serves the survivors' points
// and counts the drop; a fully dead fleet still errors.
func TestRemoteDegraded(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pts := vaq.UniformPoints(rng, 1200, vaq.UnitSquare())
	f := startFixture(t, pts, 600)

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/info" {
			json.NewEncoder(w).Encode(wire.Info{Len: 10, Bounds: [4]float64{0, 0, 1, 1}, IDOffset: int64(len(pts))})
			return
		}
		http.Error(w, `{"code":"internal","message":"down"}`, http.StatusInternalServerError)
	}))
	defer dead.Close()
	urls := append(append([]string{}, f.urls...), dead.URL)
	region := vaq.CircleRegion(vaq.NewCircle(vaq.Pt(0.5, 0.5), 0.15))

	// Fail-fast (default): the dead backend fails the query.
	ff, err := vaq.DialRemote(context.Background(), urls)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ff.Query(context.Background(), region); err == nil {
		t.Fatal("fail-fast query survived a dead backend")
	}

	// Degraded: survivors answer; the drop is counted. The survivors are
	// the full real dataset, so the answer equals the local oracle.
	deg, err := vaq.DialRemote(context.Background(), urls, vaq.WithDegradedFanOut())
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.local.Query(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	got, err := deg.Query(context.Background(), region)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if !slices.Equal(got, want) {
		t.Fatal("degraded result diverges from the survivors' truth")
	}
	if deg.Dropped() == 0 {
		t.Error("degraded drop not counted")
	}

	// Every backend dead: degraded still errors.
	allDead, err := vaq.DialRemote(context.Background(), []string{dead.URL}, vaq.WithDegradedFanOut())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := allDead.Query(context.Background(), region); err == nil {
		t.Fatal("fully dead fleet answered")
	}
}

// TestRemoteResultCacheAndMetrics verifies the remote flavor composes
// with the shared instrumentation exactly like local flavors: repeated
// queries hit the result cache, and the registry carries remote-flavor
// counters.
func TestRemoteResultCacheAndMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	pts := vaq.UniformPoints(rng, 800, vaq.UnitSquare())
	f := startFixture(t, pts, 400)

	rc := vaq.NewResultCache(64)
	reg := vaq.NewMetricsRegistry()
	re := f.dial(t, vaq.WithResultCache(rc), vaq.WithMetrics(reg))
	region := vaq.CircleRegion(vaq.NewCircle(vaq.Pt(0.4, 0.6), 0.1))

	first, err := re.Query(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	second, err := re.Query(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(first, second) {
		t.Fatal("cache hit changed the result")
	}
	if rc.Stats().Hits == 0 {
		t.Error("second identical query did not hit the result cache")
	}
	snap := reg.Snapshot()
	found := false
	for name := range snap.Counters {
		if strings.Contains(name, `flavor="remote"`) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no remote-flavor counters in the registry snapshot")
	}
}
